//! The shared group-by kernel: a raw-entry-style hash table that probes
//! with *borrowed* key projections and materialises an owned key only on
//! first insert.
//!
//! `HashMap<Vec<Value>, _>` — the shape every grouping pass in this
//! workspace used to build — clones the full key projection per probed
//! row and re-hashes the values (string walks) every time. [`GroupBy`]
//! splits the entry API the way hashbrown's raw-entry does: the caller
//! supplies the hash and an equality closure against *stored* keys, so
//! the probe allocates nothing; only a miss pays for an owned key.
//! [`KeyProj`] is the standard probe: a row's projection onto an
//! attribute list as interned [`Sym`]s — hashed by FNV over `u32`s,
//! compared word-wise.
//!
//! Entries keep **insertion order** (the table is append-only), which is
//! what lets the parallel detection engine fold per-shard maps in chunk
//! order and stay byte-identical to the sequential scan. There is no
//! tombstone machinery; consumers that need logical removal (the
//! secondary [`crate::Index`], the incremental detector's group states)
//! empty the entry's payload and skip it on read.

use crate::pool::Sym;

/// Sentinel for an empty slot.
const EMPTY: u32 = u32::MAX;
/// Fibonacci multiplier spreading entropy into the high bits the slot
/// index is taken from.
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;
/// FNV-1a basis/prime (64-bit).
const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a raw word stream — the kernel's hash for any key that
/// reduces to machine words (interned symbols, cell coordinates, class
/// roots).
#[inline]
pub fn hash_words(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = FNV_BASIS;
    for w in words {
        h = (h ^ w).wrapping_mul(FNV_PRIME);
    }
    h
}

/// [`hash_words`] over interned symbols — the hash for projection keys.
#[inline]
pub fn hash_syms(syms: impl IntoIterator<Item = Sym>) -> u64 {
    hash_words(syms.into_iter().map(|s| u64::from(s.raw())))
}

/// Deterministic hash of a borrowed [`crate::Value`] projection — the
/// probe hash for un-interned keys (computed expression keys in the SQL
/// executor). Uses the std `SipHasher13` with fixed keys, so it agrees
/// across threads and processes.
#[inline]
pub fn hash_values<'a>(vals: impl IntoIterator<Item = &'a crate::value::Value>) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for v in vals {
        v.hash(&mut h);
    }
    h.finish()
}

/// A borrowed key projection: one row's interned symbols restricted to
/// an attribute list. Hashes and compares straight off the row — no
/// `Vec` is built until [`KeyProj::to_key`] runs on first insert.
#[derive(Clone, Copy)]
pub struct KeyProj<'a> {
    row: &'a [Sym],
    attrs: &'a [usize],
}

impl<'a> KeyProj<'a> {
    /// Project `row` (a table's symbol mirror) onto `attrs`.
    pub fn new(row: &'a [Sym], attrs: &'a [usize]) -> Self {
        KeyProj { row, attrs }
    }

    /// The projection's hash (FNV over symbols, in attribute order).
    #[inline]
    pub fn hash(&self) -> u64 {
        hash_syms(self.attrs.iter().map(|&a| self.row[a]))
    }

    /// Does a stored owned key equal this projection?
    #[inline]
    pub fn matches(&self, key: &[Sym]) -> bool {
        key.len() == self.attrs.len() && self.attrs.iter().zip(key).all(|(&a, k)| self.row[a] == *k)
    }

    /// Materialise the owned key — called once per distinct group.
    pub fn to_key(&self) -> Box<[Sym]> {
        self.attrs.iter().map(|&a| self.row[a]).collect()
    }
}

/// A borrowed **column** projection: the table's symbol columns
/// restricted to an attribute list, probed by slot. The columnar dual
/// of [`KeyProj`] — where `KeyProj` walks one row's symbols, `ColProj`
/// holds one slice per projected attribute and reads the same slot from
/// each, so a grouping scan touches only the projected columns and
/// never fetches a row. Hashes agree with [`KeyProj`] (FNV over symbols
/// in attribute order), so keys built through either probe interoperate.
#[derive(Clone)]
pub struct ColProj<'a> {
    cols: Vec<&'a [Sym]>,
}

impl<'a> ColProj<'a> {
    /// Projection over `cols`, one slice per projected attribute, in
    /// attribute order. All slices must share a length (the table's
    /// slot count). Usually built via `Table::proj`.
    pub fn new(cols: Vec<&'a [Sym]>) -> Self {
        ColProj { cols }
    }

    /// Number of projected attributes.
    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// The projection's hash at `slot` (FNV over symbols, in attribute
    /// order — identical to [`KeyProj::hash`] on the same cells).
    #[inline]
    pub fn hash_at(&self, slot: usize) -> u64 {
        hash_syms(self.cols.iter().map(|c| c[slot]))
    }

    /// Does a stored owned key equal this projection at `slot`?
    #[inline]
    pub fn matches_at(&self, slot: usize, key: &[Sym]) -> bool {
        key.len() == self.cols.len() && self.cols.iter().zip(key).all(|(c, k)| c[slot] == *k)
    }

    /// Materialise the owned key at `slot` — once per distinct group.
    pub fn key_at(&self, slot: usize) -> Box<[Sym]> {
        self.cols.iter().map(|c| c[slot]).collect()
    }

    /// The symbol of projected attribute `i` at `slot`.
    #[inline]
    pub fn sym_at(&self, i: usize, slot: usize) -> Sym {
        self.cols[i][slot]
    }
}

#[derive(Clone, Debug)]
struct Entry<K, V> {
    hash: u64,
    key: K,
    val: V,
}

/// An insertion-ordered hash table with a raw-entry probe API.
#[derive(Clone, Debug)]
pub struct GroupBy<K, V> {
    entries: Vec<Entry<K, V>>,
    /// Open-addressed slot table of entry indices; length is a power of
    /// two, slot = `(hash * FIB) >> shift`, linear probing.
    slots: Vec<u32>,
    shift: u32,
}

impl<K, V> Default for GroupBy<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> GroupBy<K, V> {
    /// Empty table.
    pub fn new() -> Self {
        GroupBy { entries: Vec::new(), slots: vec![EMPTY; 8], shift: 64 - 3 }
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no group exists.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    #[inline]
    fn slot_of(&self, hash: u64) -> usize {
        (hash.wrapping_mul(FIB) >> self.shift) as usize
    }

    /// Find the entry index of the group matching `(hash, eq)`, probing
    /// without allocating.
    #[inline]
    pub fn probe(&self, hash: u64, mut eq: impl FnMut(&K) -> bool) -> Option<usize> {
        let mask = self.slots.len() - 1;
        let mut slot = self.slot_of(hash);
        loop {
            match self.slots[slot] {
                EMPTY => return None,
                i => {
                    let e = &self.entries[i as usize];
                    if e.hash == hash && eq(&e.key) {
                        return Some(i as usize);
                    }
                }
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Insert a group known to be absent (callers pair this with a
    /// failed [`GroupBy::probe`] — the raw-entry split). Returns the new
    /// entry index.
    pub fn insert_unique(&mut self, hash: u64, key: K, val: V) -> usize {
        if (self.entries.len() + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        let idx = self.entries.len();
        // Slot entries are u32 with EMPTY as the sentinel; fail loudly
        // rather than silently corrupting probes past that ceiling.
        assert!(idx < EMPTY as usize, "GroupBy is full ({EMPTY} groups)");
        self.entries.push(Entry { hash, key, val });
        let mask = self.slots.len() - 1;
        let mut slot = self.slot_of(hash);
        while self.slots[slot] != EMPTY {
            slot = (slot + 1) & mask;
        }
        self.slots[slot] = idx as u32;
        idx
    }

    /// Probe-or-insert: the payload of the group matching `(hash, eq)`,
    /// creating it from `make` (owned key + initial payload) on miss.
    #[inline]
    pub fn entry_mut(
        &mut self,
        hash: u64,
        eq: impl FnMut(&K) -> bool,
        make: impl FnOnce() -> (K, V),
    ) -> &mut V {
        let idx = match self.probe(hash, eq) {
            Some(i) => i,
            None => {
                let (key, val) = make();
                self.insert_unique(hash, key, val)
            }
        };
        &mut self.entries[idx].val
    }

    /// The payload of the group matching `(hash, eq)`, if present.
    pub fn get(&self, hash: u64, eq: impl FnMut(&K) -> bool) -> Option<&V> {
        self.probe(hash, eq).map(|i| &self.entries[i].val)
    }

    /// Mutable payload by entry index.
    pub fn value_at_mut(&mut self, idx: usize) -> &mut V {
        &mut self.entries[idx].val
    }

    /// Key and payload by entry index.
    pub fn entry_at(&self, idx: usize) -> (&K, &V) {
        let e = &self.entries[idx];
        (&e.key, &e.val)
    }

    /// Groups in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries.iter().map(|e| (&e.key, &e.val))
    }

    /// Consume into `(hash, key, payload)` triples in insertion order —
    /// what the parallel engine folds when merging per-shard maps (the
    /// hash is reused, not recomputed).
    pub fn into_entries(self) -> impl Iterator<Item = (u64, K, V)> {
        self.entries.into_iter().map(|e| (e.hash, e.key, e.val))
    }

    fn grow(&mut self) {
        let bits = (64 - self.shift) + 1;
        self.shift = 64 - bits;
        self.slots = vec![EMPTY; 1 << bits];
        let mask = self.slots.len() - 1;
        for (idx, e) in self.entries.iter().enumerate() {
            let mut slot = (e.hash.wrapping_mul(FIB) >> self.shift) as usize;
            while self.slots[slot] != EMPTY {
                slot = (slot + 1) & mask;
            }
            self.slots[slot] = idx as u32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ValuePool;
    use crate::value::Value;

    #[test]
    fn probe_insert_roundtrip_under_growth() {
        let mut g: GroupBy<u64, usize> = GroupBy::new();
        for i in 0..1000u64 {
            let h = hash_syms([]) ^ i; // spread arbitrary hashes
            assert!(g.probe(h, |k| *k == i).is_none());
            g.insert_unique(h, i, i as usize * 2);
        }
        assert_eq!(g.len(), 1000);
        for i in 0..1000u64 {
            let h = hash_syms([]) ^ i;
            let idx = g.probe(h, |k| *k == i).unwrap();
            assert_eq!(*g.entry_at(idx).1, i as usize * 2);
        }
        // Insertion order is preserved.
        let keys: Vec<u64> = g.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn entry_mut_creates_once() {
        let mut g: GroupBy<Box<[Sym]>, Vec<u32>> = GroupBy::new();
        let mut pool = ValuePool::new();
        let row: Vec<Sym> = ["a", "b", "a"].iter().map(|s| pool.intern(&Value::from(*s))).collect();
        let attrs = [0usize, 2];
        let kp = KeyProj::new(&row, &attrs);
        g.entry_mut(kp.hash(), |k| kp.matches(k), || (kp.to_key(), Vec::new())).push(1);
        g.entry_mut(kp.hash(), |k| kp.matches(k), || (kp.to_key(), Vec::new())).push(2);
        assert_eq!(g.len(), 1);
        assert_eq!(g.iter().next().unwrap().1, &vec![1, 2]);
    }

    #[test]
    fn keyproj_matches_projection_only() {
        let mut pool = ValuePool::new();
        let row: Vec<Sym> = ["x", "y", "z"].iter().map(|s| pool.intern(&Value::from(*s))).collect();
        let attrs = [1usize];
        let kp = KeyProj::new(&row, &attrs);
        assert!(kp.matches(&[row[1]]));
        assert!(!kp.matches(&[row[0]]));
        assert!(!kp.matches(&[row[1], row[1]]));
        assert_eq!(kp.to_key().as_ref(), &[row[1]]);
        // Equal projections hash equal.
        let row2: Vec<Sym> =
            ["q", "y", "r"].iter().map(|s| pool.intern(&Value::from(*s))).collect();
        assert_eq!(KeyProj::new(&row2, &attrs).hash(), kp.hash());
    }

    #[test]
    fn colproj_agrees_with_keyproj() {
        let mut pool = ValuePool::new();
        let rows: Vec<Vec<Sym>> = [["x", "y", "z"], ["q", "y", "r"]]
            .iter()
            .map(|r| r.iter().map(|s| pool.intern(&Value::from(*s))).collect())
            .collect();
        // Transpose into columns.
        let cols: Vec<Vec<Sym>> = (0..3).map(|a| rows.iter().map(|r| r[a]).collect()).collect();
        let attrs = [1usize, 2];
        let cp = ColProj::new(vec![&cols[1], &cols[2]]);
        for (slot, row) in rows.iter().enumerate() {
            let kp = KeyProj::new(row, &attrs);
            assert_eq!(cp.hash_at(slot), kp.hash());
            assert_eq!(cp.key_at(slot), kp.to_key());
            assert!(cp.matches_at(slot, &kp.to_key()));
        }
        assert!(!cp.matches_at(0, &cp.key_at(1)));
        assert_eq!(cp.width(), 2);
        assert_eq!(cp.sym_at(0, 0), rows[0][1]);
    }

    #[test]
    fn hash_values_is_order_sensitive_and_deterministic() {
        let a = Value::from("a");
        let b = Value::from("b");
        assert_eq!(hash_values([&a, &b]), hash_values([&a, &b]));
        assert_ne!(hash_values([&a, &b]), hash_values([&b, &a]));
    }
}
