//! The `.sdq` on-disk snapshot format: open a table in milliseconds
//! instead of re-ingesting CSV.
//!
//! Layout (all integers little-endian, strings and lists
//! length-prefixed, no external dependencies):
//!
//! ```text
//! magic     8 bytes   "SDQSNAP1"
//! checksum  u64       FNV-1a over every payload byte below
//! payload:
//!   schema            name, arity, per attribute: name, type tag,
//!                     optional finite domain (count + values)
//!   pool              count + values, in symbol order (compacted)
//!   columns           slot count, then per attribute: slots × u32 syms
//!   tombstones        word count + u64 bitmap words (1 = live)
//! ```
//!
//! The writer **compacts the pool**: symbols no live row references are
//! dropped and the columns remapped, so a long-lived table's append-only
//! [`ValuePool`] sheds dead values at snapshot time. Dead slots are
//! written as symbol 0 — they are never dereferenced (every read is
//! bitmap-guarded), so the placeholder is safe even when the pool is
//! empty. Slot structure round-trips exactly: tuple ids, tombstones and
//! iteration order are identical after `save ∘ open`.
//!
//! [`Table::open_snapshot`] memory-maps the file on Linux (a raw
//! `mmap` syscall — no libc in this workspace) and decodes straight out
//! of the mapping; elsewhere, or if the map fails, it falls back to one
//! buffered read. Corrupt or truncated input returns
//! [`Error::Snapshot`] with the failing byte offset — never a panic.

use crate::error::{Error, Result};
use crate::pool::{Sym, ValuePool};
use crate::schema::{Attribute, Schema, Type};
use crate::table::Table;
use crate::value::Value;
use std::path::Path;

const MAGIC: &[u8; 8] = b"SDQSNAP1";

/// FNV-1a over a byte stream — the payload checksum.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------- writer

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Bool(b) => {
            out.push(1);
            out.push(u8::from(*b));
        }
        Value::Int(i) => {
            out.push(2);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(3);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(4);
            put_str(out, s);
        }
    }
}

fn type_tag(ty: Type) -> u8 {
    match ty {
        Type::Bool => 0,
        Type::Int => 1,
        Type::Float => 2,
        Type::Str => 3,
    }
}

// ---------------------------------------------------------------- reader

/// A decoding cursor: every failure carries the byte offset (within the
/// payload region, i.e. relative to byte 16 of the file).
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn err(&self, message: impl Into<String>) -> Error {
        Error::Snapshot { offset: 16 + self.pos, message: message.into() }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(self
                .err(format!("truncated: wanted {n} bytes, {} left", self.buf.len() - self.pos)));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A length-prefixed count, bounds-checked against the bytes that
    /// remain so a corrupt length cannot trigger a huge allocation.
    fn count(&mut self, min_item_bytes: usize, what: &str) -> Result<usize> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_item_bytes) > self.buf.len() - self.pos {
            return Err(self.err(format!("{what} count {n} exceeds remaining bytes")));
        }
        Ok(n)
    }

    fn str(&mut self) -> Result<&'a str> {
        let n = self.count(1, "string length")?;
        std::str::from_utf8(self.take(n)?).map_err(|_| self.err("string is not valid UTF-8"))
    }

    fn value(&mut self) -> Result<Value> {
        match self.u8()? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Bool(self.u8()? != 0)),
            2 => Ok(Value::Int(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))),
            3 => Ok(Value::Float(f64::from_bits(u64::from_le_bytes(
                self.take(8)?.try_into().unwrap(),
            )))),
            4 => Ok(Value::str(self.str()?)),
            t => Err(self.err(format!("unknown value tag {t}"))),
        }
    }

    fn ty(&mut self) -> Result<Type> {
        match self.u8()? {
            0 => Ok(Type::Bool),
            1 => Ok(Type::Int),
            2 => Ok(Type::Float),
            3 => Ok(Type::Str),
            t => Err(self.err(format!("unknown type tag {t}"))),
        }
    }
}

impl Table {
    /// Serialise the table to `path` in the `.sdq` format, compacting
    /// the value pool: only symbols some live row references are
    /// written, and columns are remapped onto the compacted numbering.
    pub fn save_snapshot(&self, path: impl AsRef<Path>) -> Result<()> {
        // Durable by construction: temp + fsync + rename + dir fsync,
        // so a crash mid-save can never leave a torn `.sdq` behind.
        crate::durable::write_atomic(path.as_ref(), &self.snapshot_bytes())
    }

    /// The serialised `.sdq` image (see [`Table::save_snapshot`]).
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let arity = self.schema().arity();
        let slots = self.slots();

        // Pool compaction: mark the symbols live rows reference, then
        // renumber them densely in ascending old-symbol order.
        let mut used = vec![false; self.pool().len()];
        for slot in self.live_slots() {
            for a in 0..arity {
                used[self.col(a)[slot].index()] = true;
            }
        }
        let mut remap = vec![0u32; self.pool().len()];
        let mut compacted: Vec<&Value> = Vec::new();
        for (old, keep) in used.iter().enumerate() {
            if *keep {
                remap[old] = compacted.len() as u32;
                compacted.push(&self.pool().values()[old]);
            }
        }

        let mut payload = Vec::new();
        // Schema block.
        put_str(&mut payload, self.schema().name());
        put_u32(&mut payload, arity as u32);
        for attr in self.schema().attributes() {
            put_str(&mut payload, &attr.name);
            payload.push(type_tag(attr.ty));
            match &attr.finite_domain {
                None => payload.push(0),
                Some(domain) => {
                    payload.push(1);
                    put_u32(&mut payload, domain.len() as u32);
                    for v in domain {
                        put_value(&mut payload, v);
                    }
                }
            }
        }
        // Pool dictionary.
        put_u32(&mut payload, compacted.len() as u32);
        for v in &compacted {
            put_value(&mut payload, v);
        }
        // Column blocks; dead slots write symbol 0 (bitmap-masked, never
        // dereferenced).
        put_u64(&mut payload, slots as u64);
        for a in 0..arity {
            let col = self.col(a);
            for (slot, sym) in col.iter().enumerate() {
                let raw = if self.is_live(slot) { remap[sym.index()] } else { 0 };
                payload.extend_from_slice(&raw.to_le_bytes());
            }
        }
        // Tombstone bitmap.
        let nwords = slots.div_ceil(64);
        put_u64(&mut payload, nwords as u64);
        for wi in 0..nwords {
            let mut word = 0u64;
            for bit in 0..64 {
                let slot = (wi << 6) | bit;
                if slot < slots && self.is_live(slot) {
                    word |= 1 << bit;
                }
            }
            put_u64(&mut payload, word);
        }

        let mut out = Vec::with_capacity(16 + payload.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Open a `.sdq` snapshot. Memory-maps the file where the platform
    /// allows, otherwise falls back to a single buffered read; either
    /// way the payload is decoded in one pass. Malformed input returns
    /// [`Error::Snapshot`] with the failing byte offset.
    pub fn open_snapshot(path: impl AsRef<Path>) -> Result<Table> {
        let path = path.as_ref();
        let file =
            std::fs::File::open(path).map_err(|e| Error::Io(format!("{}: {e}", path.display())))?;
        let len = file.metadata().map_err(Error::from)?.len() as usize;
        if let Some(mapped) = mmap::map(&file, len) {
            return Table::decode_snapshot(&mapped);
        }
        drop(file);
        let bytes =
            std::fs::read(path).map_err(|e| Error::Io(format!("{}: {e}", path.display())))?;
        Table::decode_snapshot(&bytes)
    }

    /// Decode a full `.sdq` image.
    pub fn decode_snapshot(bytes: &[u8]) -> Result<Table> {
        if bytes.len() < 16 || &bytes[..8] != MAGIC {
            return Err(Error::Snapshot {
                offset: 0,
                message: "not a .sdq snapshot (bad magic)".into(),
            });
        }
        let stored = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        let payload = &bytes[16..];
        if fnv1a(payload) != stored {
            return Err(Error::Snapshot {
                offset: 8,
                message: "checksum mismatch (corrupt or truncated file)".into(),
            });
        }
        let mut c = Cursor { buf: payload, pos: 0 };

        // Schema block.
        let name = c.str()?.to_string();
        let arity = c.count(3, "attribute")?;
        let mut attrs = Vec::with_capacity(arity);
        for _ in 0..arity {
            let attr_name = c.str()?.to_string();
            let ty = c.ty()?;
            let attr = match c.u8()? {
                0 => Attribute::new(attr_name, ty),
                1 => {
                    let n = c.count(1, "domain value")?;
                    let mut domain = Vec::with_capacity(n);
                    for _ in 0..n {
                        domain.push(c.value()?);
                    }
                    Attribute::with_domain(attr_name, ty, domain)
                }
                t => return Err(c.err(format!("bad finite-domain flag {t}"))),
            };
            attrs.push(attr);
        }
        let schema = Schema::new(name, attrs);

        // Pool dictionary.
        let n_vals = c.count(1, "pool value")?;
        let mut vals = Vec::with_capacity(n_vals);
        for _ in 0..n_vals {
            vals.push(c.value()?);
        }
        let pool =
            ValuePool::from_values(vals).ok_or_else(|| c.err("pool holds duplicate values"))?;

        // Column blocks.
        let slots = c.u64()? as usize;
        if slots.saturating_mul(arity).saturating_mul(4) > payload.len() {
            return Err(c.err(format!("slot count {slots} exceeds remaining bytes")));
        }
        let mut cols = Vec::with_capacity(arity);
        for _ in 0..arity {
            let raw = c.take(slots * 4)?;
            let col: Vec<Sym> = raw
                .chunks_exact(4)
                .map(|b| Sym::from_raw(u32::from_le_bytes(b.try_into().unwrap())))
                .collect();
            cols.push(col);
        }

        // Tombstone bitmap.
        let nwords = c.u64()? as usize;
        if nwords != slots.div_ceil(64) {
            return Err(c.err(format!(
                "bitmap holds {nwords} words, {} slots need {}",
                slots,
                slots.div_ceil(64)
            )));
        }
        let mut live = Vec::with_capacity(nwords);
        for _ in 0..nwords {
            live.push(c.u64()?);
        }
        if c.pos != payload.len() {
            return Err(c.err(format!("{} trailing bytes", payload.len() - c.pos)));
        }
        // Bits at or past `slots` would fabricate tuples out of thin air.
        if !slots.is_multiple_of(64) {
            if let Some(&last) = live.last() {
                if last >> (slots % 64) != 0 {
                    return Err(c.err("bitmap sets bits past the slot count"));
                }
            }
        }
        // Every live cell's symbol must index the pool.
        for (wi, &word) in live.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let slot = (wi << 6) | w.trailing_zeros() as usize;
                w &= w - 1;
                for col in &cols {
                    if col[slot].index() >= pool.len() {
                        return Err(c.err(format!(
                            "slot {slot} references symbol {} outside the pool ({} values)",
                            col[slot].index(),
                            pool.len()
                        )));
                    }
                }
            }
        }
        Ok(Table::from_parts(schema, cols, live, slots, pool))
    }
}

/// Raw-syscall `mmap` for snapshot opens. The workspace vendors no
/// `libc`, so the Linux map goes straight to the kernel; any failure —
/// wrong platform, empty file, kernel refusal — reports `None` and the
/// caller falls back to a buffered read.
mod mmap {
    use std::fs::File;
    use std::ops::Deref;

    pub struct Mapped {
        ptr: *const u8,
        len: usize,
    }

    impl Deref for Mapped {
        type Target = [u8];
        fn deref(&self) -> &[u8] {
            // Safety: `ptr` is a live PROT_READ mapping of `len` bytes,
            // unmapped only in Drop.
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for Mapped {
        fn drop(&mut self) {
            unsafe { munmap(self.ptr, self.len) };
        }
    }

    #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
    pub fn map(file: &File, len: usize) -> Option<Mapped> {
        use std::os::unix::io::AsRawFd;
        if len == 0 {
            return None;
        }
        const PROT_READ: usize = 1;
        const MAP_PRIVATE: usize = 2;
        let fd = file.as_raw_fd();
        let ret: isize;
        #[cfg(target_arch = "x86_64")]
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") 9isize => ret, // SYS_mmap
                in("rdi") 0usize,
                in("rsi") len,
                in("rdx") PROT_READ,
                in("r10") MAP_PRIVATE,
                in("r8") fd as isize,
                in("r9") 0usize,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack)
            );
        }
        #[cfg(target_arch = "aarch64")]
        unsafe {
            std::arch::asm!(
                "svc 0",
                in("x8") 222usize, // SYS_mmap
                inlateout("x0") 0usize => ret,
                in("x1") len,
                in("x2") PROT_READ,
                in("x3") MAP_PRIVATE,
                in("x4") fd as isize,
                in("x5") 0usize,
                options(nostack)
            );
        }
        // Errors come back as small negative values in the pointer.
        if ret < 0 {
            return None;
        }
        Some(Mapped { ptr: ret as *const u8, len })
    }

    #[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
    pub fn map(_file: &File, _len: usize) -> Option<Mapped> {
        None
    }

    #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
    unsafe fn munmap(ptr: *const u8, len: usize) {
        let _ret: isize;
        #[cfg(target_arch = "x86_64")]
        std::arch::asm!(
            "syscall",
            inlateout("rax") 11isize => _ret, // SYS_munmap
            in("rdi") ptr,
            in("rsi") len,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
        #[cfg(target_arch = "aarch64")]
        std::arch::asm!(
            "svc 0",
            in("x8") 215usize, // SYS_munmap
            inlateout("x0") ptr => _ret,
            in("x1") len,
            options(nostack)
        );
    }

    #[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
    unsafe fn munmap(_ptr: *const u8, _len: usize) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Type;
    use crate::table::TupleId;

    fn temp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("sdq-test-{}-{name}.sdq", std::process::id()))
    }

    fn sample() -> Table {
        let s = Schema::builder("customer")
            .attr("cc", Type::Str)
            .attr("n", Type::Int)
            .attr_in("flag", Type::Bool, vec![Value::Bool(true), Value::Bool(false)])
            .build();
        let mut t = Table::new(s);
        t.push(vec!["44".into(), Value::Int(1), Value::Bool(true)]).unwrap();
        t.push(vec!["01".into(), Value::Int(2), Value::Bool(false)]).unwrap();
        t.push(vec!["44".into(), Value::Null, Value::Bool(true)]).unwrap();
        t
    }

    fn assert_same(a: &Table, b: &Table) {
        assert_eq!(a.schema().name(), b.schema().name());
        assert_eq!(a.schema().attributes(), b.schema().attributes());
        assert_eq!(a.slots(), b.slots());
        assert_eq!(a.len(), b.len());
        assert_eq!(a.diff_cells(b), 0);
        let ia: Vec<_> = a.tuple_ids().collect();
        let ib: Vec<_> = b.tuple_ids().collect();
        assert_eq!(ia, ib);
    }

    #[test]
    fn roundtrip_plain() {
        let t = sample();
        let path = temp("plain");
        t.save_snapshot(&path).unwrap();
        let back = Table::open_snapshot(&path).unwrap();
        assert_same(&t, &back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn roundtrip_preserves_tombstones_and_compacts_pool() {
        let mut t = sample();
        t.delete(TupleId(1)).unwrap();
        let path = temp("tombstones");
        t.save_snapshot(&path).unwrap();
        let back = Table::open_snapshot(&path).unwrap();
        assert_same(&t, &back);
        assert!(!back.contains(TupleId(1)));
        // Values only the deleted row held are gone from the pool…
        assert!(back.pool().lookup(&"01".into()).is_none());
        assert!(back.pool().lookup(&Value::Int(2)).is_none());
        // …shared values survive.
        assert!(back.pool().lookup(&"44".into()).is_some());
        // Appending after reopen keeps allocating fresh slots.
        let mut back = back;
        let id = back.push(vec!["99".into(), Value::Int(9), Value::Bool(false)]).unwrap();
        assert_eq!(id, TupleId(3));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn roundtrip_all_deleted_and_empty() {
        let mut t = sample();
        for id in t.tuple_ids().collect::<Vec<_>>() {
            t.delete(id).unwrap();
        }
        let path = temp("alldead");
        t.save_snapshot(&path).unwrap();
        let back = Table::open_snapshot(&path).unwrap();
        assert_same(&t, &back);
        assert_eq!(back.pool().len(), 0, "nothing live, nothing written");
        std::fs::remove_file(&path).ok();

        let empty = Table::new(sample().schema().clone());
        let path = temp("empty");
        empty.save_snapshot(&path).unwrap();
        assert_same(&empty, &Table::open_snapshot(&path).unwrap());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_and_truncated_files_error_without_panic() {
        let bytes = sample().snapshot_bytes();
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(matches!(Table::decode_snapshot(&bad), Err(Error::Snapshot { offset: 0, .. })));
        // Flipped payload byte → checksum mismatch.
        let mut bad = bytes.clone();
        *bad.last_mut().unwrap() ^= 1;
        assert!(matches!(Table::decode_snapshot(&bad), Err(Error::Snapshot { offset: 8, .. })));
        // Every truncation either fails the checksum or reports a typed
        // decode error — never a panic or a silent partial table.
        for cut in 0..bytes.len() {
            let err = Table::decode_snapshot(&bytes[..cut]);
            assert!(matches!(err, Err(Error::Snapshot { .. })), "cut at {cut}: {err:?}");
        }
        // Trailing garbage (checksummed in, so it decodes past the end).
        let mut long = sample().snapshot_bytes();
        long.push(0xAB);
        let fixed = fnv1a(&long[16..]);
        long[8..16].copy_from_slice(&fixed.to_le_bytes());
        match Table::decode_snapshot(&long) {
            Err(Error::Snapshot { message, .. }) => {
                assert!(message.contains("trailing"), "{message}")
            }
            other => panic!("expected trailing-bytes error, got {other:?}"),
        }
        // A non-file path errors as Io, not Snapshot.
        assert!(matches!(Table::open_snapshot("/no/such/dir/x.sdq"), Err(Error::Io(_))));
    }

    #[test]
    fn hostile_lengths_do_not_allocate() {
        // A payload claiming 4 billion pool values must be rejected by
        // the bounds check, not attempted.
        let mut payload = Vec::new();
        put_str(&mut payload, "r");
        put_u32(&mut payload, 0); // arity 0
        put_u32(&mut payload, u32::MAX); // pool count lie
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        assert!(matches!(Table::decode_snapshot(&bytes), Err(Error::Snapshot { .. })));
    }

    #[test]
    fn floats_and_nan_roundtrip_bitwise() {
        let s = Schema::builder("f").attr("x", Type::Float).build();
        let mut t = Table::new(s);
        for v in [0.0f64, -0.0, f64::NAN, f64::INFINITY, -3.25] {
            t.push(vec![Value::Float(v)]).unwrap();
        }
        let path = temp("floats");
        t.save_snapshot(&path).unwrap();
        let back = Table::open_snapshot(&path).unwrap();
        assert_eq!(t.diff_cells(&back), 0);
        // -0.0 and NaN keep their exact bit patterns.
        let vals: Vec<Value> = back.rows().map(|(_, r)| r[0].clone()).collect();
        assert!(matches!(vals[1], Value::Float(f) if f.to_bits() == (-0.0f64).to_bits()));
        assert!(matches!(vals[2], Value::Float(f) if f.is_nan()));
        std::fs::remove_file(&path).ok();
    }
}
