//! Scalar expressions and their evaluator.
//!
//! Expressions are shared between the native operators and the SQL
//! executor. They are deliberately simple: column references by position,
//! literals, comparisons, boolean connectives, arithmetic, `IS NULL`,
//! `IN (…)`, and `LIKE` with `%`/`_` wildcards (needed because the CFD →
//! SQL translation of Fan et al. encodes pattern wildcards with `LIKE`).

use crate::error::{Error, Result};
use crate::value::Value;
use std::fmt;

/// Binary comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    fn apply(self, a: &Value, b: &Value) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// Binary arithmetic operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

/// A scalar expression evaluated against a row (`&[Value]`).
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Column by position in the input row.
    Col(usize),
    /// A literal value.
    Lit(Value),
    /// Comparison; NULL operands make comparisons false (except `IsNull`).
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Negation.
    Not(Box<Expr>),
    /// SQL `IS NULL`.
    IsNull(Box<Expr>),
    /// Arithmetic over Int/Float.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// `expr IN (v1, …, vn)` over literal values.
    InList(Box<Expr>, Vec<Value>),
    /// `expr LIKE pattern` with `%` (any run) and `_` (any char).
    Like(Box<Expr>, String),
}

impl Expr {
    /// Column reference.
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }

    /// Literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    /// `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Eq, Box::new(self), Box::new(other))
    }

    /// `self <> other`.
    pub fn ne(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ne, Box::new(self), Box::new(other))
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }

    /// Fold a conjunction over an iterator; empty iterator → TRUE.
    pub fn conj(mut terms: impl Iterator<Item = Expr>) -> Expr {
        match terms.next() {
            None => Expr::Lit(Value::Bool(true)),
            Some(first) => terms.fold(first, |acc, t| acc.and(t)),
        }
    }

    /// Evaluate against a row.
    pub fn eval(&self, row: &[Value]) -> Result<Value> {
        match self {
            Expr::Col(i) => row.get(*i).cloned().ok_or_else(|| {
                Error::Eval(format!("column #{i} out of range (row arity {})", row.len()))
            }),
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Cmp(op, a, b) => {
                let (va, vb) = (a.eval(row)?, b.eval(row)?);
                if va.is_null() || vb.is_null() {
                    // SQL-style: comparisons with NULL are not satisfied.
                    return Ok(Value::Bool(false));
                }
                Ok(Value::Bool(op.apply(&va, &vb)))
            }
            Expr::And(a, b) => {
                let va = a.eval(row)?.as_bool().unwrap_or(false);
                if !va {
                    return Ok(Value::Bool(false));
                }
                Ok(Value::Bool(b.eval(row)?.as_bool().unwrap_or(false)))
            }
            Expr::Or(a, b) => {
                let va = a.eval(row)?.as_bool().unwrap_or(false);
                if va {
                    return Ok(Value::Bool(true));
                }
                Ok(Value::Bool(b.eval(row)?.as_bool().unwrap_or(false)))
            }
            Expr::Not(e) => Ok(Value::Bool(!e.eval(row)?.as_bool().unwrap_or(false))),
            Expr::IsNull(e) => Ok(Value::Bool(e.eval(row)?.is_null())),
            Expr::Arith(op, a, b) => {
                let (va, vb) = (a.eval(row)?, b.eval(row)?);
                if va.is_null() || vb.is_null() {
                    return Ok(Value::Null);
                }
                arith(*op, &va, &vb)
            }
            Expr::InList(e, vs) => {
                let v = e.eval(row)?;
                if v.is_null() {
                    return Ok(Value::Bool(false));
                }
                Ok(Value::Bool(vs.contains(&v)))
            }
            Expr::Like(e, pat) => {
                let v = e.eval(row)?;
                match v.as_str() {
                    Some(s) => Ok(Value::Bool(like_match(pat, s))),
                    None => Ok(Value::Bool(false)),
                }
            }
        }
    }

    /// Evaluate as a boolean predicate (non-bool, NULL → false).
    pub fn matches(&self, row: &[Value]) -> Result<bool> {
        Ok(self.eval(row)?.as_bool().unwrap_or(false))
    }

    /// Rewrite all column indices through `map` (old index → new index).
    ///
    /// Used when pushing predicates through projections/joins.
    pub fn remap_cols(&self, map: &dyn Fn(usize) -> usize) -> Expr {
        match self {
            Expr::Col(i) => Expr::Col(map(*i)),
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Cmp(op, a, b) => {
                Expr::Cmp(*op, Box::new(a.remap_cols(map)), Box::new(b.remap_cols(map)))
            }
            Expr::And(a, b) => Expr::And(Box::new(a.remap_cols(map)), Box::new(b.remap_cols(map))),
            Expr::Or(a, b) => Expr::Or(Box::new(a.remap_cols(map)), Box::new(b.remap_cols(map))),
            Expr::Not(e) => Expr::Not(Box::new(e.remap_cols(map))),
            Expr::IsNull(e) => Expr::IsNull(Box::new(e.remap_cols(map))),
            Expr::Arith(op, a, b) => {
                Expr::Arith(*op, Box::new(a.remap_cols(map)), Box::new(b.remap_cols(map)))
            }
            Expr::InList(e, vs) => Expr::InList(Box::new(e.remap_cols(map)), vs.clone()),
            Expr::Like(e, p) => Expr::Like(Box::new(e.remap_cols(map)), p.clone()),
        }
    }
}

fn arith(op: ArithOp, a: &Value, b: &Value) -> Result<Value> {
    use ArithOp::*;
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Ok(match op {
            Add => Value::Int(x.wrapping_add(*y)),
            Sub => Value::Int(x.wrapping_sub(*y)),
            Mul => Value::Int(x.wrapping_mul(*y)),
            Div => {
                if *y == 0 {
                    return Err(Error::Eval("integer division by zero".into()));
                }
                Value::Int(x / y)
            }
        }),
        _ => {
            let x = a.as_float().ok_or_else(|| Error::Eval(format!("non-numeric operand {a}")))?;
            let y = b.as_float().ok_or_else(|| Error::Eval(format!("non-numeric operand {b}")))?;
            Ok(Value::Float(match op {
                Add => x + y,
                Sub => x - y,
                Mul => x * y,
                Div => x / y,
            }))
        }
    }
}

/// SQL LIKE matching with `%` and `_`, case-sensitive, O(n·m) DP-free
/// greedy with backtracking on `%`.
pub fn like_match(pattern: &str, s: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = s.chars().collect();
    // Classic two-pointer wildcard match.
    let (mut pi, mut ti) = (0usize, 0usize);
    let (mut star, mut star_ti) = (None::<usize>, 0usize);
    while ti < t.len() {
        // `%` must be recognised before the literal branch: a text char
        // that happens to be '%' would otherwise consume the wildcard.
        if pi < p.len() && p[pi] == '%' {
            star = Some(pi);
            star_ti = ti;
            pi += 1;
        } else if pi < p.len() && (p[pi] == '_' || p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if let Some(sp) = star {
            pi = sp + 1;
            star_ti += 1;
            ti = star_ti;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Vec<Value> {
        vec![Value::Int(10), "uk".into(), Value::Null, Value::Float(2.5)]
    }

    #[test]
    fn col_and_lit() {
        assert_eq!(Expr::col(0).eval(&row()).unwrap(), Value::Int(10));
        assert_eq!(Expr::lit(5i64).eval(&row()).unwrap(), Value::Int(5));
        assert!(Expr::col(99).eval(&row()).is_err());
    }

    #[test]
    fn comparisons() {
        let e = Expr::col(0).eq(Expr::lit(10i64));
        assert!(e.matches(&row()).unwrap());
        let e = Expr::col(1).ne(Expr::lit("us"));
        assert!(e.matches(&row()).unwrap());
        let e = Expr::Cmp(CmpOp::Lt, Box::new(Expr::col(0)), Box::new(Expr::lit(11i64)));
        assert!(e.matches(&row()).unwrap());
    }

    #[test]
    fn null_comparisons_are_false() {
        let e = Expr::col(2).eq(Expr::lit("x"));
        assert!(!e.matches(&row()).unwrap());
        let e = Expr::col(2).ne(Expr::lit("x"));
        assert!(!e.matches(&row()).unwrap());
        let e = Expr::IsNull(Box::new(Expr::col(2)));
        assert!(e.matches(&row()).unwrap());
    }

    #[test]
    fn boolean_shortcircuit() {
        // Col(99) would error, but AND short-circuits on false LHS.
        let e = Expr::lit(false).and(Expr::col(99));
        assert!(!e.matches(&row()).unwrap());
        let e = Expr::lit(true).or(Expr::col(99));
        assert!(e.matches(&row()).unwrap());
    }

    #[test]
    fn conj_of_empty_is_true() {
        assert!(Expr::conj(std::iter::empty()).matches(&row()).unwrap());
    }

    #[test]
    fn arithmetic() {
        let e = Expr::Arith(ArithOp::Add, Box::new(Expr::col(0)), Box::new(Expr::lit(5i64)));
        assert_eq!(e.eval(&row()).unwrap(), Value::Int(15));
        let e = Expr::Arith(ArithOp::Mul, Box::new(Expr::col(3)), Box::new(Expr::lit(2i64)));
        assert_eq!(e.eval(&row()).unwrap(), Value::Float(5.0));
        let e = Expr::Arith(ArithOp::Div, Box::new(Expr::lit(1i64)), Box::new(Expr::lit(0i64)));
        assert!(e.eval(&row()).is_err());
    }

    #[test]
    fn in_list() {
        let e = Expr::InList(Box::new(Expr::col(1)), vec!["us".into(), "uk".into()]);
        assert!(e.matches(&row()).unwrap());
        let e = Expr::InList(Box::new(Expr::col(2)), vec!["x".into()]);
        assert!(!e.matches(&row()).unwrap());
    }

    #[test]
    fn like() {
        assert!(like_match("%", ""));
        assert!(like_match("%", "anything"));
        assert!(like_match("a%", "abc"));
        assert!(!like_match("a%", "bc"));
        assert!(like_match("%bc", "abc"));
        assert!(like_match("a_c", "abc"));
        assert!(!like_match("a_c", "abbc"));
        assert!(like_match("%b%", "abc"));
        assert!(like_match("a%c%e", "abcde"));
        assert!(!like_match("", "x"));
        assert!(like_match("", ""));
        // Regression: a literal '%' in the *text* must not swallow the
        // pattern's wildcard.
        assert!(like_match("100%", "100% sure"));
        assert!(like_match("%sure", "100% sure"));
    }

    #[test]
    fn remap_cols() {
        let e = Expr::col(0).eq(Expr::col(1));
        let r = e.remap_cols(&|i| i + 10);
        assert_eq!(r, Expr::Col(10).eq(Expr::Col(11)));
    }
}
