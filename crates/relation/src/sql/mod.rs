//! A SQL subset: lexer, parser, planner and executor.
//!
//! The Semandaq prototype (reference \[9\] in the paper) detects CFD violations by
//! emitting SQL against a commercial DBMS. This module provides the
//! slice of SQL those generated queries need, so the detection path can
//! be exercised end-to-end with no external database:
//!
//! * `SELECT [DISTINCT] items FROM t [alias] [JOIN u ON …]* [WHERE …]
//!   [GROUP BY …] [HAVING …] [ORDER BY …] [LIMIT n]`
//! * aggregates `COUNT(*)`, `COUNT(x)`, `COUNT(DISTINCT x)`, `SUM`,
//!   `MIN`, `MAX`, `AVG`
//! * predicates `=`, `<>`, `!=`, `<`, `<=`, `>`, `>=`, `AND`, `OR`,
//!   `NOT`, `IS [NOT] NULL`, `IN (…)`, `LIKE`
//!
//! ## Example
//!
//! ```
//! use revival_relation::{Catalog, Schema, Table, Type, Value};
//! use revival_relation::sql;
//!
//! let schema = Schema::builder("r").attr("a", Type::Str).attr("b", Type::Int).build();
//! let mut t = Table::new(schema);
//! t.push(vec!["x".into(), Value::Int(1)]).unwrap();
//! t.push(vec!["x".into(), Value::Int(2)]).unwrap();
//! let mut cat = Catalog::new();
//! cat.register(t);
//!
//! let rs = sql::run("SELECT a, COUNT(DISTINCT b) AS n FROM r GROUP BY a", &cat).unwrap();
//! assert_eq!(rs.rows[0][1], Value::Int(2));
//! ```

mod ast;
mod exec;
mod parser;
mod plan;
mod token;

pub use ast::{Aggregate, Query, SelectItem, SqlExpr};
pub use exec::ResultSet;
pub use parser::parse_query;

use crate::error::Result;
use crate::schema::Catalog;

/// Parse and execute a query against a catalog.
pub fn run(sql_text: &str, catalog: &Catalog) -> Result<ResultSet> {
    let query = parse_query(sql_text)?;
    execute(&query, catalog)
}

/// Execute an already-parsed query.
pub fn execute(query: &Query, catalog: &Catalog) -> Result<ResultSet> {
    let planned = plan::plan(query, catalog)?;
    exec::execute(&planned, catalog)
}
