//! SQL abstract syntax.

use crate::value::Value;

/// A (possibly qualified) column reference `[table.]name`.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnRef {
    pub table: Option<String>,
    pub column: String,
}

/// Aggregate functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Aggregate {
    CountStar,
    Count { distinct: bool },
    Sum,
    Min,
    Max,
    Avg,
}

/// Scalar-level SQL expression (pre-name-resolution).
#[derive(Clone, Debug, PartialEq)]
pub enum SqlExpr {
    Column(ColumnRef),
    Literal(Value),
    Cmp(crate::expr::CmpOp, Box<SqlExpr>, Box<SqlExpr>),
    And(Box<SqlExpr>, Box<SqlExpr>),
    Or(Box<SqlExpr>, Box<SqlExpr>),
    Not(Box<SqlExpr>),
    IsNull(Box<SqlExpr>),
    IsNotNull(Box<SqlExpr>),
    InList(Box<SqlExpr>, Vec<Value>),
    Like(Box<SqlExpr>, String),
    Arith(crate::expr::ArithOp, Box<SqlExpr>, Box<SqlExpr>),
    /// Aggregate call; the inner expression is `None` for `COUNT(*)`.
    Agg(Aggregate, Option<Box<SqlExpr>>),
}

/// One item in the SELECT list.
#[derive(Clone, Debug, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `expr [AS alias]`
    Expr { expr: SqlExpr, alias: Option<String> },
}

/// A FROM-clause table with optional alias.
#[derive(Clone, Debug, PartialEq)]
pub struct TableRef {
    pub name: String,
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this table is known by inside the query.
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// An `ORDER BY` key.
#[derive(Clone, Debug, PartialEq)]
pub struct OrderKey {
    pub expr: SqlExpr,
    pub desc: bool,
}

/// A parsed `SELECT` query.
#[derive(Clone, Debug, PartialEq)]
pub struct Query {
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    pub from: TableRef,
    /// `(table, on-condition)` pairs, left-deep.
    pub joins: Vec<(TableRef, SqlExpr)>,
    pub where_clause: Option<SqlExpr>,
    pub group_by: Vec<ColumnRef>,
    pub having: Option<SqlExpr>,
    pub order_by: Vec<OrderKey>,
    pub limit: Option<usize>,
}
