//! SQL lexer.

use crate::error::{Error, Result};

/// A lexical token with its byte position (for error messages).
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// Keyword or identifier (keywords are recognised case-insensitively
    /// by the parser; the lexer just produces words).
    Word(String),
    /// String literal (single-quoted, `''` escape).
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Punctuation / operators.
    Symbol(&'static str),
}

/// Token + source byte offset.
#[derive(Clone, Debug, PartialEq)]
pub struct Spanned {
    pub tok: Tok,
    pub pos: usize,
}

/// Tokenise a SQL string.
pub fn lex(input: &str) -> Result<Vec<Spanned>> {
    let bytes = input.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b'\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(Error::SqlParse {
                            position: start,
                            message: "unterminated string literal".into(),
                        });
                    }
                    if bytes[i] == b'\'' {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        let ch = input[i..].chars().next().unwrap();
                        s.push(ch);
                        i += ch.len_utf8();
                    }
                }
                toks.push(Spanned { tok: Tok::Str(s), pos: start });
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && i + 1 < bytes.len()
                    && bytes[i + 1].is_ascii_digit()
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &input[start..i];
                let tok = if is_float {
                    Tok::Float(text.parse().map_err(|_| Error::SqlParse {
                        position: start,
                        message: format!("bad float `{text}`"),
                    })?)
                } else {
                    Tok::Int(text.parse().map_err(|_| Error::SqlParse {
                        position: start,
                        message: format!("bad integer `{text}`"),
                    })?)
                };
                toks.push(Spanned { tok, pos: start });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'#')
                {
                    i += 1;
                }
                toks.push(Spanned { tok: Tok::Word(input[start..i].to_string()), pos: start });
            }
            b'<' => {
                let start = i;
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    toks.push(Spanned { tok: Tok::Symbol("<="), pos: start });
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    toks.push(Spanned { tok: Tok::Symbol("<>"), pos: start });
                    i += 2;
                } else {
                    toks.push(Spanned { tok: Tok::Symbol("<"), pos: start });
                    i += 1;
                }
            }
            b'>' => {
                let start = i;
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    toks.push(Spanned { tok: Tok::Symbol(">="), pos: start });
                    i += 2;
                } else {
                    toks.push(Spanned { tok: Tok::Symbol(">"), pos: start });
                    i += 1;
                }
            }
            b'!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    toks.push(Spanned { tok: Tok::Symbol("<>"), pos: i });
                    i += 2;
                } else {
                    return Err(Error::SqlParse { position: i, message: "lone `!`".into() });
                }
            }
            b'=' => {
                toks.push(Spanned { tok: Tok::Symbol("="), pos: i });
                i += 1;
            }
            b'(' | b')' | b',' | b'*' | b'.' | b'+' | b'-' | b'/' | b';' => {
                let sym = match c {
                    b'(' => "(",
                    b')' => ")",
                    b',' => ",",
                    b'*' => "*",
                    b'.' => ".",
                    b'+' => "+",
                    b'-' => "-",
                    b'/' => "/",
                    _ => ";",
                };
                toks.push(Spanned { tok: Tok::Symbol(sym), pos: i });
                i += 1;
            }
            _ => {
                return Err(Error::SqlParse {
                    position: i,
                    message: format!(
                        "unexpected character `{}`",
                        input[i..].chars().next().unwrap()
                    ),
                })
            }
        }
    }
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_and_symbols() {
        let toks = lex("SELECT a, b FROM r WHERE a = 'x'").unwrap();
        assert_eq!(toks[0].tok, Tok::Word("SELECT".into()));
        assert_eq!(toks[2].tok, Tok::Symbol(","));
        assert_eq!(*toks.last().unwrap(), Spanned { tok: Tok::Str("x".into()), pos: 29 });
    }

    #[test]
    fn numbers() {
        let toks = lex("1 2.5 300").unwrap();
        assert_eq!(toks[0].tok, Tok::Int(1));
        assert_eq!(toks[1].tok, Tok::Float(2.5));
        assert_eq!(toks[2].tok, Tok::Int(300));
    }

    #[test]
    fn string_escape() {
        let toks = lex("'it''s'").unwrap();
        assert_eq!(toks[0].tok, Tok::Str("it's".into()));
    }

    #[test]
    fn comparison_operators() {
        let toks = lex("<= >= <> != < > =").unwrap();
        let syms: Vec<_> = toks
            .iter()
            .map(|t| match &t.tok {
                Tok::Symbol(s) => *s,
                _ => panic!(),
            })
            .collect();
        assert_eq!(syms, vec!["<=", ">=", "<>", "<>", "<", ">", "="]);
    }

    #[test]
    fn unterminated_string() {
        assert!(lex("'oops").is_err());
    }

    #[test]
    fn lone_bang_rejected() {
        assert!(lex("a ! b").is_err());
    }

    #[test]
    fn dotted_identifier_tokens() {
        let toks = lex("t.a").unwrap();
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].tok, Tok::Symbol("."));
    }
}
