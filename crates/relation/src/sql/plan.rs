//! Name resolution + logical planning.
//!
//! Turns a parsed [`Query`] into a [`Planned`] physical description:
//! column references become positional [`Expr`]s over the joined row,
//! equi-join keys are extracted from `ON` clauses so the executor can
//! hash-join, and aggregate queries are split into (group keys,
//! aggregate specs, post-aggregation expressions).

use super::ast::*;
use crate::error::{Error, Result};
use crate::expr::{CmpOp, Expr};
use crate::schema::Catalog;

/// One aggregate to compute per group.
#[derive(Clone, Debug, PartialEq)]
pub struct AggSpec {
    pub agg: Aggregate,
    /// Input expression over the joined row; `None` for `COUNT(*)`.
    pub input: Option<Expr>,
}

/// A join step against table `table_idx` in [`Planned::tables`].
#[derive(Clone, Debug)]
pub struct JoinStep {
    pub table: String,
    /// Equi-key columns: positions in the accumulated (left) row.
    pub left_keys: Vec<usize>,
    /// Equi-key columns: attribute positions in the right table.
    pub right_keys: Vec<usize>,
    /// Residual predicate over the combined row (after equi matching).
    pub residual: Option<Expr>,
}

/// What the executor should produce for one output column.
#[derive(Clone, Debug)]
pub enum OutputExpr {
    /// Expression over the joined input row (non-aggregate queries).
    Row(Expr),
    /// Expression over the post-aggregation row
    /// `[group values…, aggregate values…]` (aggregate queries).
    PostAgg(Expr),
}

/// Fully resolved query ready for execution.
#[derive(Clone, Debug)]
pub struct Planned {
    /// Base table name.
    pub base: String,
    pub joins: Vec<JoinStep>,
    /// Filter over the joined row.
    pub filter: Option<Expr>,
    /// True if this query aggregates (has GROUP BY or any aggregate fn).
    pub aggregated: bool,
    /// Group-key expressions over the joined row.
    pub group_by: Vec<Expr>,
    /// Aggregates to maintain per group.
    pub aggs: Vec<AggSpec>,
    /// HAVING over the post-agg row.
    pub having: Option<Expr>,
    /// One per output column.
    pub outputs: Vec<OutputExpr>,
    /// Output column names.
    pub column_names: Vec<String>,
    /// Sort keys: (expr over the same row kind as outputs, desc).
    pub order_by: Vec<(OutputExpr, bool)>,
    pub distinct: bool,
    pub limit: Option<usize>,
}

/// Symbol table: binding name → (list of column names, global offset).
struct Scope {
    /// (binding, column names, offset into joined row)
    entries: Vec<(String, Vec<String>, usize)>,
    total: usize,
}

impl Scope {
    fn resolve(&self, col: &ColumnRef) -> Result<usize> {
        let mut found = None;
        for (binding, cols, offset) in &self.entries {
            if let Some(t) = &col.table {
                if !t.eq_ignore_ascii_case(binding) {
                    continue;
                }
            }
            if let Some(pos) = cols.iter().position(|c| c == &col.column) {
                if found.is_some() {
                    return Err(Error::SqlExec(format!("ambiguous column `{}`", col.column)));
                }
                found = Some(offset + pos);
            } else if col.table.is_some() {
                return Err(Error::SqlExec(format!("no column `{}` in `{}`", col.column, binding)));
            }
        }
        found.ok_or_else(|| Error::SqlExec(format!("unknown column `{}`", col.column)))
    }
}

/// Resolve a scalar (non-aggregate) SqlExpr over the joined row.
fn resolve_scalar(e: &SqlExpr, scope: &Scope) -> Result<Expr> {
    Ok(match e {
        SqlExpr::Column(c) => Expr::Col(scope.resolve(c)?),
        SqlExpr::Literal(v) => Expr::Lit(v.clone()),
        SqlExpr::Cmp(op, a, b) => {
            Expr::Cmp(*op, Box::new(resolve_scalar(a, scope)?), Box::new(resolve_scalar(b, scope)?))
        }
        SqlExpr::And(a, b) => {
            Expr::And(Box::new(resolve_scalar(a, scope)?), Box::new(resolve_scalar(b, scope)?))
        }
        SqlExpr::Or(a, b) => {
            Expr::Or(Box::new(resolve_scalar(a, scope)?), Box::new(resolve_scalar(b, scope)?))
        }
        SqlExpr::Not(a) => Expr::Not(Box::new(resolve_scalar(a, scope)?)),
        SqlExpr::IsNull(a) => Expr::IsNull(Box::new(resolve_scalar(a, scope)?)),
        SqlExpr::IsNotNull(a) => {
            Expr::Not(Box::new(Expr::IsNull(Box::new(resolve_scalar(a, scope)?))))
        }
        SqlExpr::InList(a, vs) => Expr::InList(Box::new(resolve_scalar(a, scope)?), vs.clone()),
        SqlExpr::Like(a, p) => Expr::Like(Box::new(resolve_scalar(a, scope)?), p.clone()),
        SqlExpr::Arith(op, a, b) => Expr::Arith(
            *op,
            Box::new(resolve_scalar(a, scope)?),
            Box::new(resolve_scalar(b, scope)?),
        ),
        SqlExpr::Agg(..) => {
            return Err(Error::SqlExec("aggregate not allowed in this context".into()))
        }
    })
}

/// Does an expression contain an aggregate call?
fn contains_agg(e: &SqlExpr) -> bool {
    match e {
        SqlExpr::Agg(..) => true,
        SqlExpr::Column(_) | SqlExpr::Literal(_) => false,
        SqlExpr::Cmp(_, a, b)
        | SqlExpr::And(a, b)
        | SqlExpr::Or(a, b)
        | SqlExpr::Arith(_, a, b) => contains_agg(a) || contains_agg(b),
        SqlExpr::Not(a) | SqlExpr::IsNull(a) | SqlExpr::IsNotNull(a) => contains_agg(a),
        SqlExpr::InList(a, _) | SqlExpr::Like(a, _) => contains_agg(a),
    }
}

/// Context for resolving post-aggregation expressions.
struct AggCtx<'a> {
    scope: &'a Scope,
    /// Resolved group-key expressions (over the joined row) and the
    /// post-agg positions they occupy (0..group_by.len()).
    group_exprs: Vec<Expr>,
    aggs: Vec<AggSpec>,
}

impl<'a> AggCtx<'a> {
    /// Resolve an expression into the post-agg row
    /// `[group values…, agg values…]`.
    fn resolve(&mut self, e: &SqlExpr) -> Result<Expr> {
        match e {
            SqlExpr::Agg(agg, input) => {
                let input_expr = match input {
                    Some(inner) => Some(resolve_scalar(inner, self.scope)?),
                    None => None,
                };
                let spec = AggSpec { agg: *agg, input: input_expr };
                let idx = match self.aggs.iter().position(|a| *a == spec) {
                    Some(i) => i,
                    None => {
                        self.aggs.push(spec);
                        self.aggs.len() - 1
                    }
                };
                Ok(Expr::Col(self.group_exprs.len() + idx))
            }
            SqlExpr::Column(c) => {
                let scalar = Expr::Col(self.scope.resolve(c)?);
                let pos = self.group_exprs.iter().position(|g| *g == scalar).ok_or_else(|| {
                    Error::SqlExec(format!(
                        "column `{}` must appear in GROUP BY or inside an aggregate",
                        c.column
                    ))
                })?;
                Ok(Expr::Col(pos))
            }
            SqlExpr::Literal(v) => Ok(Expr::Lit(v.clone())),
            SqlExpr::Cmp(op, a, b) => {
                Ok(Expr::Cmp(*op, Box::new(self.resolve(a)?), Box::new(self.resolve(b)?)))
            }
            SqlExpr::And(a, b) => {
                Ok(Expr::And(Box::new(self.resolve(a)?), Box::new(self.resolve(b)?)))
            }
            SqlExpr::Or(a, b) => {
                Ok(Expr::Or(Box::new(self.resolve(a)?), Box::new(self.resolve(b)?)))
            }
            SqlExpr::Not(a) => Ok(Expr::Not(Box::new(self.resolve(a)?))),
            SqlExpr::IsNull(a) => Ok(Expr::IsNull(Box::new(self.resolve(a)?))),
            SqlExpr::IsNotNull(a) => {
                Ok(Expr::Not(Box::new(Expr::IsNull(Box::new(self.resolve(a)?)))))
            }
            SqlExpr::InList(a, vs) => Ok(Expr::InList(Box::new(self.resolve(a)?), vs.clone())),
            SqlExpr::Like(a, p) => Ok(Expr::Like(Box::new(self.resolve(a)?), p.clone())),
            SqlExpr::Arith(op, a, b) => {
                Ok(Expr::Arith(*op, Box::new(self.resolve(a)?), Box::new(self.resolve(b)?)))
            }
        }
    }
}

/// Split a resolved boolean expression into its top-level conjuncts.
fn conjuncts(e: Expr) -> Vec<Expr> {
    match e {
        Expr::And(a, b) => {
            let mut v = conjuncts(*a);
            v.extend(conjuncts(*b));
            v
        }
        other => vec![other],
    }
}

/// Default display name for a select item.
fn default_name(e: &SqlExpr, idx: usize) -> String {
    match e {
        SqlExpr::Column(c) => c.column.clone(),
        SqlExpr::Agg(Aggregate::CountStar, _) => "count".into(),
        SqlExpr::Agg(Aggregate::Count { .. }, _) => "count".into(),
        SqlExpr::Agg(Aggregate::Sum, _) => "sum".into(),
        SqlExpr::Agg(Aggregate::Min, _) => "min".into(),
        SqlExpr::Agg(Aggregate::Max, _) => "max".into(),
        SqlExpr::Agg(Aggregate::Avg, _) => "avg".into(),
        _ => format!("col{idx}"),
    }
}

/// Plan a query against a catalog.
pub fn plan(q: &Query, catalog: &Catalog) -> Result<Planned> {
    // --- build scope, table by table ---
    let mut scope = Scope { entries: Vec::new(), total: 0 };
    let add_table = |scope: &mut Scope, tref: &TableRef| -> Result<usize> {
        let table = catalog.get(&tref.name)?;
        let cols: Vec<String> =
            table.schema().attributes().iter().map(|a| a.name.clone()).collect();
        let arity = cols.len();
        let offset = scope.total;
        for (b, _, _) in &scope.entries {
            if b.eq_ignore_ascii_case(tref.binding()) {
                return Err(Error::SqlExec(format!(
                    "duplicate table binding `{}`",
                    tref.binding()
                )));
            }
        }
        scope.entries.push((tref.binding().to_string(), cols, offset));
        scope.total += arity;
        Ok(arity)
    };

    add_table(&mut scope, &q.from)?;
    let mut joins = Vec::new();
    for (tref, on) in &q.joins {
        let right_offset = scope.total;
        add_table(&mut scope, tref)?;
        let on_resolved = resolve_scalar(on, &scope)?;
        // Extract equi-join conjuncts: Col(l) = Col(r) with l left of the
        // new table and r inside it (or vice versa).
        let mut left_keys = Vec::new();
        let mut right_keys = Vec::new();
        let mut residual = Vec::new();
        for c in conjuncts(on_resolved) {
            match &c {
                Expr::Cmp(CmpOp::Eq, a, b) => match (a.as_ref(), b.as_ref()) {
                    (Expr::Col(x), Expr::Col(y)) if *x < right_offset && *y >= right_offset => {
                        left_keys.push(*x);
                        right_keys.push(*y - right_offset);
                    }
                    (Expr::Col(x), Expr::Col(y)) if *y < right_offset && *x >= right_offset => {
                        left_keys.push(*y);
                        right_keys.push(*x - right_offset);
                    }
                    _ => residual.push(c),
                },
                _ => residual.push(c),
            }
        }
        let residual =
            if residual.is_empty() { None } else { Some(Expr::conj(residual.into_iter())) };
        joins.push(JoinStep { table: tref.name.clone(), left_keys, right_keys, residual });
    }

    let filter = match &q.where_clause {
        Some(w) => {
            if contains_agg(w) {
                return Err(Error::SqlExec("aggregates not allowed in WHERE".into()));
            }
            Some(resolve_scalar(w, &scope)?)
        }
        None => None,
    };

    // --- aggregate or plain? ---
    let any_agg = q.items.iter().any(|it| match it {
        SelectItem::Expr { expr, .. } => contains_agg(expr),
        SelectItem::Wildcard => false,
    }) || q.having.as_ref().map(contains_agg).unwrap_or(false);
    let aggregated = any_agg || !q.group_by.is_empty();

    let mut outputs = Vec::new();
    let mut column_names = Vec::new();
    let mut group_exprs = Vec::new();
    let mut aggs = Vec::new();
    let mut having = None;

    if aggregated {
        if q.items.iter().any(|i| matches!(i, SelectItem::Wildcard)) {
            return Err(Error::SqlExec("`*` not allowed in aggregate queries".into()));
        }
        for g in &q.group_by {
            group_exprs.push(Expr::Col(scope.resolve(g)?));
        }
        let mut ctx = AggCtx { scope: &scope, group_exprs, aggs };
        for (idx, item) in q.items.iter().enumerate() {
            let SelectItem::Expr { expr, alias } = item else { unreachable!() };
            let resolved = ctx.resolve(expr)?;
            outputs.push(OutputExpr::PostAgg(resolved));
            column_names.push(alias.clone().unwrap_or_else(|| default_name(expr, idx)));
        }
        if let Some(h) = &q.having {
            having = Some(ctx.resolve(h)?);
        }
        group_exprs = ctx.group_exprs;
        aggs = ctx.aggs;
    } else {
        if q.having.is_some() {
            return Err(Error::SqlExec("HAVING requires GROUP BY or aggregates".into()));
        }
        for (idx, item) in q.items.iter().enumerate() {
            match item {
                SelectItem::Wildcard => {
                    for (_, cols, offset) in &scope.entries {
                        for (i, c) in cols.iter().enumerate() {
                            outputs.push(OutputExpr::Row(Expr::Col(offset + i)));
                            column_names.push(c.clone());
                        }
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    outputs.push(OutputExpr::Row(resolve_scalar(expr, &scope)?));
                    column_names.push(alias.clone().unwrap_or_else(|| default_name(expr, idx)));
                }
            }
        }
    }

    // --- ORDER BY ---
    // A sort key may reference an output alias, or any expression over the
    // same row kind as the outputs.
    let mut order_by = Vec::new();
    for k in &q.order_by {
        // Alias reference?
        if let SqlExpr::Column(c) = &k.expr {
            if c.table.is_none() {
                if let Some(pos) = column_names.iter().position(|n| *n == c.column) {
                    // Reuse the already-planned output expression.
                    order_by.push((outputs[pos].clone(), k.desc));
                    continue;
                }
            }
        }
        let resolved = if aggregated {
            let mut ctx =
                AggCtx { scope: &scope, group_exprs: group_exprs.clone(), aggs: aggs.clone() };
            let e = ctx.resolve(&k.expr)?;
            if ctx.aggs.len() != aggs.len() {
                aggs = ctx.aggs;
            }
            OutputExpr::PostAgg(e)
        } else {
            OutputExpr::Row(resolve_scalar(&k.expr, &scope)?)
        };
        order_by.push((resolved, k.desc));
    }

    Ok(Planned {
        base: q.from.name.clone(),
        joins,
        filter,
        aggregated,
        group_by: group_exprs,
        aggs,
        having,
        outputs,
        column_names,
        order_by,
        distinct: q.distinct,
        limit: q.limit,
    })
}
