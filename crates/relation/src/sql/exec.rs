//! Query executor: scan → hash join → filter → hash aggregate →
//! having → project → distinct → sort → limit.

use super::plan::{AggSpec, JoinStep, OutputExpr, Planned};
use crate::error::{Error, Result};
use crate::expr::Expr;
use crate::groupby::{hash_values, GroupBy};
use crate::schema::Catalog;
use crate::sql::ast::Aggregate;
use crate::table::{Table, TupleId};
use crate::value::Value;
use std::collections::{BTreeSet, HashSet};

/// Rows + column names returned by a query.
#[derive(Clone, Debug, PartialEq)]
pub struct ResultSet {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the result is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Single scalar convenience (first row, first column).
    pub fn scalar(&self) -> Option<&Value> {
        self.rows.first().and_then(|r| r.first())
    }

    /// Render as an aligned text table (for the CLI).
    pub fn render_text(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                r.iter()
                    .enumerate()
                    .map(|(i, v)| {
                        let s = v.to_string();
                        if i < widths.len() && s.len() > widths[i] {
                            widths[i] = s.len();
                        }
                        s
                    })
                    .collect()
            })
            .collect();
        let mut out = String::new();
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{c:<w$}", w = widths[i]));
        }
        out.push('\n');
        for r in &rendered {
            for (i, v) in r.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&format!("{v:<w$}", w = widths[i]));
            }
            out.push('\n');
        }
        out
    }
}

/// Aggregate accumulator.
enum AggState {
    Count(u64),
    CountDistinct(HashSet<Value>),
    Sum { int: i64, float: f64, any_float: bool, seen: bool },
    Min(Option<Value>),
    Max(Option<Value>),
    Avg { sum: f64, n: u64 },
}

impl AggState {
    fn new(spec: &AggSpec) -> AggState {
        match spec.agg {
            Aggregate::CountStar => AggState::Count(0),
            Aggregate::Count { distinct: false } => AggState::Count(0),
            Aggregate::Count { distinct: true } => AggState::CountDistinct(HashSet::new()),
            Aggregate::Sum => AggState::Sum { int: 0, float: 0.0, any_float: false, seen: false },
            Aggregate::Min => AggState::Min(None),
            Aggregate::Max => AggState::Max(None),
            Aggregate::Avg => AggState::Avg { sum: 0.0, n: 0 },
        }
    }

    fn update(&mut self, spec: &AggSpec, row: &[Value]) -> Result<()> {
        let input = match &spec.input {
            Some(e) => Some(e.eval(row)?),
            None => None,
        };
        match self {
            AggState::Count(n) => {
                // COUNT(*) counts rows; COUNT(x) skips NULLs.
                match &input {
                    None => *n += 1,
                    Some(v) if !v.is_null() => *n += 1,
                    _ => {}
                }
            }
            AggState::CountDistinct(set) => {
                if let Some(v) = input {
                    if !v.is_null() {
                        set.insert(v);
                    }
                }
            }
            AggState::Sum { int, float, any_float, seen } => {
                if let Some(v) = input {
                    match v {
                        Value::Int(x) => {
                            *int = int.wrapping_add(x);
                            *seen = true;
                        }
                        Value::Float(x) => {
                            *float += x;
                            *any_float = true;
                            *seen = true;
                        }
                        Value::Null => {}
                        other => {
                            return Err(Error::SqlExec(format!("SUM over non-numeric {other}")))
                        }
                    }
                }
            }
            AggState::Min(m) => {
                if let Some(v) = input {
                    if !v.is_null() && m.as_ref().map(|cur| v < *cur).unwrap_or(true) {
                        *m = Some(v);
                    }
                }
            }
            AggState::Max(m) => {
                if let Some(v) = input {
                    if !v.is_null() && m.as_ref().map(|cur| v > *cur).unwrap_or(true) {
                        *m = Some(v);
                    }
                }
            }
            AggState::Avg { sum, n } => {
                if let Some(v) = input {
                    if let Some(f) = v.as_float() {
                        *sum += f;
                        *n += 1;
                    } else if !v.is_null() {
                        return Err(Error::SqlExec(format!("AVG over non-numeric {v}")));
                    }
                }
            }
        }
        Ok(())
    }

    fn finish(self) -> Value {
        match self {
            AggState::Count(n) => Value::Int(n as i64),
            AggState::CountDistinct(s) => Value::Int(s.len() as i64),
            AggState::Sum { int, float, any_float, seen } => {
                if !seen {
                    Value::Null
                } else if any_float {
                    Value::Float(float + int as f64)
                } else {
                    Value::Int(int)
                }
            }
            AggState::Min(m) => m.unwrap_or(Value::Null),
            AggState::Max(m) => m.unwrap_or(Value::Null),
            AggState::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / n as f64)
                }
            }
        }
    }
}

/// Execute a planned query.
pub fn execute(p: &Planned, catalog: &Catalog) -> Result<ResultSet> {
    // --- scan base (+ joins + filter) ---
    let base = catalog.get(&p.base)?;
    let mut rows: Vec<Vec<Value>>;
    if p.joins.is_empty() {
        // Single-table query: push the selection down to the column
        // scan, so only surviving rows materialise `Value`s.
        rows = scan_filtered(base, p.filter.as_ref())?;
    } else {
        rows = base.rows().map(|(_, r)| r).collect();
        for step in &p.joins {
            rows = join(rows, step, catalog)?;
        }
        // Filter column indices refer to the combined row, so the
        // predicate runs after the joins here.
        if let Some(f) = &p.filter {
            let mut kept = Vec::with_capacity(rows.len());
            for r in rows {
                if f.matches(&r)? {
                    kept.push(r);
                }
            }
            rows = kept;
        }
    }

    // --- aggregate ---
    let mut out_rows: Vec<Vec<Value>> = Vec::new();
    if p.aggregated {
        // The interned-kernel probe shape: the key evaluates into a
        // reusable scratch buffer, existing groups are found without
        // cloning it, and only a first-seen key moves into the table.
        // Entry order is insertion order, so no separate order list.
        let mut groups: GroupBy<Vec<Value>, Vec<AggState>> = GroupBy::new();
        let mut scratch: Vec<Value> = Vec::new();
        for r in &rows {
            scratch.clear();
            for g in &p.group_by {
                scratch.push(g.eval(r)?);
            }
            let hash = hash_values(scratch.iter());
            let states = groups.entry_mut(
                hash,
                |k| *k == scratch,
                || (scratch.clone(), p.aggs.iter().map(AggState::new).collect()),
            );
            for (st, spec) in states.iter_mut().zip(&p.aggs) {
                st.update(spec, r)?;
            }
        }
        // A global aggregate over an empty input still produces one row.
        if p.group_by.is_empty() && groups.is_empty() {
            groups.insert_unique(
                hash_values([]),
                Vec::new(),
                p.aggs.iter().map(AggState::new).collect(),
            );
        }
        for (_, key, states) in groups.into_entries() {
            let mut post: Vec<Value> = key;
            post.extend(states.into_iter().map(AggState::finish));
            if let Some(h) = &p.having {
                if !h.matches(&post)? {
                    continue;
                }
            }
            out_rows.push(post);
        }
    } else {
        out_rows = rows;
    }

    // --- project + sort keys ---
    let mut projected: Vec<(Vec<Value>, Vec<Value>)> = Vec::with_capacity(out_rows.len());
    for r in &out_rows {
        let mut out = Vec::with_capacity(p.outputs.len());
        for o in &p.outputs {
            out.push(eval_output(o, r)?);
        }
        let mut keys = Vec::with_capacity(p.order_by.len());
        for (k, _) in &p.order_by {
            keys.push(eval_output(k, r)?);
        }
        projected.push((out, keys));
    }

    // --- distinct ---
    if p.distinct {
        let mut seen = HashSet::new();
        projected.retain(|(out, _)| seen.insert(out.clone()));
    }

    // --- sort ---
    if !p.order_by.is_empty() {
        let descs: Vec<bool> = p.order_by.iter().map(|(_, d)| *d).collect();
        projected.sort_by(|(_, ka), (_, kb)| {
            for (i, desc) in descs.iter().enumerate() {
                let ord = ka[i].cmp(&kb[i]);
                let ord = if *desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    // --- limit ---
    let mut rows: Vec<Vec<Value>> = projected.into_iter().map(|(o, _)| o).collect();
    if let Some(n) = p.limit {
        rows.truncate(n);
    }

    Ok(ResultSet { columns: p.column_names.clone(), rows })
}

fn eval_output(o: &OutputExpr, row: &[Value]) -> Result<Value> {
    match o {
        OutputExpr::Row(e) | OutputExpr::PostAgg(e) => e.eval(row),
    }
}

/// Split a top-level conjunction into its conjuncts (nothing below a
/// `NOT`/`OR` is touched).
fn split_conjuncts<'e>(e: &'e Expr, out: &mut Vec<&'e Expr>) {
    if let Expr::And(a, b) = e {
        split_conjuncts(a, out);
        split_conjuncts(b, out);
    } else {
        out.push(e);
    }
}

/// Collect the column positions an expression reads.
fn cols_referenced(e: &Expr, cols: &mut BTreeSet<usize>) {
    match e {
        Expr::Col(i) => {
            cols.insert(*i);
        }
        Expr::Lit(_) => {}
        Expr::Cmp(_, a, b) | Expr::And(a, b) | Expr::Or(a, b) | Expr::Arith(_, a, b) => {
            cols_referenced(a, cols);
            cols_referenced(b, cols);
        }
        Expr::Not(e) | Expr::IsNull(e) | Expr::InList(e, _) | Expr::Like(e, _) => {
            cols_referenced(e, cols)
        }
    }
}

/// One filter conjunct, classified by how cheaply it can run against
/// the column store.
enum FilterStep<'e> {
    /// Reads exactly one column: its verdict depends only on that cell's
    /// symbol, so it evaluates once per *distinct symbol* (lazily, on
    /// first reach — preserving `AND` short-circuit error semantics).
    PerSym { col: usize, expr: &'e Expr, memo: Vec<Option<Result<bool>>> },
    /// Reads no columns at all: one verdict for every row.
    Const { expr: &'e Expr, memo: Option<Result<bool>> },
    /// Reads several columns: needs the materialised row.
    Residual(&'e Expr),
}

/// Scan a table with the selection pushed down to the symbol columns.
///
/// Conjuncts run in written order per row (matching plain `AND`
/// evaluation exactly, errors included), but single-column conjuncts
/// consult a per-symbol memo instead of re-evaluating strings, and the
/// row is materialised into `Value`s only when a multi-column conjunct
/// is reached or every conjunct has passed. A rejected row whose
/// conjuncts are all single-column never allocates anything.
fn scan_filtered(table: &Table, filter: Option<&Expr>) -> Result<Vec<Vec<Value>>> {
    let Some(filter) = filter else {
        return Ok(table.rows().map(|(_, r)| r).collect());
    };
    let mut conjuncts = Vec::new();
    split_conjuncts(filter, &mut conjuncts);
    let arity = table.schema().arity();
    let mut steps: Vec<FilterStep<'_>> = conjuncts
        .iter()
        .map(|&c| {
            let mut cols = BTreeSet::new();
            cols_referenced(c, &mut cols);
            match (cols.len(), cols.first()) {
                (0, _) => FilterStep::Const { expr: c, memo: None },
                (1, Some(&col)) if col < arity => {
                    FilterStep::PerSym { col, expr: c, memo: vec![None; table.pool().len()] }
                }
                _ => FilterStep::Residual(c),
            }
        })
        .collect();
    // Scratch row for per-symbol evaluation: all-NULL except the one
    // cell the conjunct reads (it reads nothing else by construction).
    let mut scratch: Vec<Value> = vec![Value::Null; arity];
    let mut out = Vec::new();
    'rows: for slot in table.live_slots() {
        let mut row: Option<Vec<Value>> = None;
        for step in &mut steps {
            let verdict = match step {
                FilterStep::PerSym { col, expr, memo } => {
                    let sym = table.col(*col)[slot];
                    let entry = &mut memo[sym.index()];
                    if entry.is_none() {
                        scratch[*col] = table.pool().value(sym).clone();
                        *entry = Some(expr.matches(&scratch));
                        scratch[*col] = Value::Null;
                    }
                    entry.as_ref().unwrap().clone()?
                }
                FilterStep::Const { expr, memo } => {
                    if memo.is_none() {
                        *memo = Some(expr.matches(&scratch));
                    }
                    memo.as_ref().unwrap().clone()?
                }
                FilterStep::Residual(e) => {
                    let r = match &mut row {
                        Some(r) => r,
                        none => none.insert(table.get(TupleId(slot as u64))?),
                    };
                    e.matches(r)?
                }
            };
            if !verdict {
                continue 'rows;
            }
        }
        out.push(match row {
            Some(r) => r,
            None => table.get(TupleId(slot as u64))?,
        });
    }
    Ok(out)
}

/// Hash join (or nested loop when no equi keys) of accumulated rows with
/// the next table.
fn join(left: Vec<Vec<Value>>, step: &JoinStep, catalog: &Catalog) -> Result<Vec<Vec<Value>>> {
    let right = catalog.get(&step.table)?;
    let right_rows: Vec<Vec<Value>> = right.rows().map(|(_, r)| r).collect();
    let mut out = Vec::new();
    if step.left_keys.is_empty() {
        // Nested loop with residual predicate.
        for l in &left {
            for r in &right_rows {
                let mut combined = l.clone();
                combined.extend_from_slice(r);
                if match &step.residual {
                    Some(p) => p.matches(&combined)?,
                    None => true,
                } {
                    out.push(combined);
                }
            }
        }
    } else {
        // Build hash table on the right side (groups hold row indices);
        // both build and probe hash the key projection in place (key
        // values clone only when a projection is first seen).
        let mut index: GroupBy<Vec<Value>, Vec<usize>> = GroupBy::new();
        for (ri, r) in right_rows.iter().enumerate() {
            // SQL join semantics: NULL keys never match.
            if step.right_keys.iter().any(|&k| r[k].is_null()) {
                continue;
            }
            let hash = hash_values(step.right_keys.iter().map(|&k| &r[k]));
            index
                .entry_mut(
                    hash,
                    |key| key.iter().zip(&step.right_keys).all(|(kv, &k)| *kv == r[k]),
                    || (step.right_keys.iter().map(|&k| r[k].clone()).collect(), Vec::new()),
                )
                .push(ri);
        }
        for l in &left {
            if step.left_keys.iter().any(|&k| l[k].is_null()) {
                continue;
            }
            let hash = hash_values(step.left_keys.iter().map(|&k| &l[k]));
            if let Some(matches) =
                index.get(hash, |key| key.iter().zip(&step.left_keys).all(|(kv, &k)| *kv == l[k]))
            {
                for &ri in matches {
                    let mut combined = l.clone();
                    combined.extend_from_slice(&right_rows[ri]);
                    if match &step.residual {
                        Some(p) => p.matches(&combined)?,
                        None => true,
                    } {
                        out.push(combined);
                    }
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use crate::schema::{Catalog, Schema, Type};
    use crate::sql::run;
    use crate::table::Table;
    use crate::value::Value;

    fn catalog() -> Catalog {
        let cust = Schema::builder("customer")
            .attr("cc", Type::Str)
            .attr("zip", Type::Str)
            .attr("street", Type::Str)
            .build();
        let mut t = Table::new(cust);
        for (cc, zip, street) in [
            ("44", "EH8", "Crichton"),
            ("44", "EH8", "Mayfield"), // violates zip->street for cc=44
            ("44", "G1", "HighSt"),
            ("01", "07974", "MtnAve"),
            ("01", "07974", "MtnAve"),
        ] {
            t.push(vec![cc.into(), zip.into(), street.into()]).unwrap();
        }
        let ord =
            Schema::builder("orders").attr("zip", Type::Str).attr("amount", Type::Int).build();
        let mut o = Table::new(ord);
        o.push(vec!["EH8".into(), Value::Int(10)]).unwrap();
        o.push(vec!["EH8".into(), Value::Int(20)]).unwrap();
        o.push(vec!["XX".into(), Value::Int(99)]).unwrap();
        let mut c = Catalog::new();
        c.register(t);
        c.register(o);
        c
    }

    #[test]
    fn select_star() {
        let rs = run("SELECT * FROM customer", &catalog()).unwrap();
        assert_eq!(rs.columns, vec!["cc", "zip", "street"]);
        assert_eq!(rs.len(), 5);
    }

    #[test]
    fn where_filter() {
        let rs = run("SELECT zip FROM customer WHERE cc = '44'", &catalog()).unwrap();
        assert_eq!(rs.len(), 3);
    }

    #[test]
    fn cfd_variable_violation_query() {
        // The Q_v query shape from Fan et al.: zip groups with >1 street
        // among UK customers.
        let rs = run(
            "SELECT zip FROM customer WHERE cc = '44' \
             GROUP BY zip HAVING COUNT(DISTINCT street) > 1",
            &catalog(),
        )
        .unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0][0], Value::from("EH8"));
    }

    #[test]
    fn count_star_and_scalar() {
        let rs = run("SELECT COUNT(*) FROM customer", &catalog()).unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Int(5)));
    }

    #[test]
    fn global_aggregate_on_empty_filter() {
        let rs = run("SELECT COUNT(*) FROM customer WHERE cc = 'zz'", &catalog()).unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Int(0)));
    }

    #[test]
    fn hash_join() {
        let rs = run(
            "SELECT c.zip, o.amount FROM customer c JOIN orders o ON c.zip = o.zip \
             WHERE c.cc = '44'",
            &catalog(),
        )
        .unwrap();
        // 2 customer rows with zip EH8 × 2 order rows = 4.
        assert_eq!(rs.len(), 4);
    }

    #[test]
    fn join_with_residual() {
        let rs = run(
            "SELECT c.zip FROM customer c JOIN orders o ON c.zip = o.zip AND o.amount > 15",
            &catalog(),
        )
        .unwrap();
        assert_eq!(rs.len(), 2); // two EH8 customers × one amount-20 order
    }

    #[test]
    fn aggregates() {
        let rs = run(
            "SELECT cc, COUNT(*) AS n, MIN(zip) AS lo, MAX(zip) AS hi \
             FROM customer GROUP BY cc ORDER BY cc",
            &catalog(),
        )
        .unwrap();
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[0], vec!["01".into(), Value::Int(2), "07974".into(), "07974".into()]);
        assert_eq!(rs.rows[1][1], Value::Int(3));
    }

    #[test]
    fn sum_avg() {
        let rs = run("SELECT SUM(amount), AVG(amount) FROM orders", &catalog()).unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(129));
        assert_eq!(rs.rows[0][1], Value::Float(43.0));
    }

    #[test]
    fn distinct() {
        let rs = run("SELECT DISTINCT cc FROM customer ORDER BY cc", &catalog()).unwrap();
        assert_eq!(rs.rows, vec![vec![Value::from("01")], vec![Value::from("44")]]);
    }

    #[test]
    fn order_by_desc_limit() {
        let rs = run("SELECT amount FROM orders ORDER BY amount DESC LIMIT 2", &catalog()).unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Int(99)], vec![Value::Int(20)]]);
    }

    #[test]
    fn order_by_alias() {
        let rs =
            run("SELECT cc, COUNT(*) AS n FROM customer GROUP BY cc ORDER BY n DESC", &catalog())
                .unwrap();
        assert_eq!(rs.rows[0][1], Value::Int(3));
    }

    #[test]
    fn like_and_in() {
        let rs = run(
            "SELECT street FROM customer WHERE street LIKE 'M%' AND cc IN ('01','44')",
            &catalog(),
        )
        .unwrap();
        assert_eq!(rs.len(), 3); // Mayfield + 2×MtnAve
    }

    #[test]
    fn ambiguous_column_rejected() {
        let err = run("SELECT zip FROM customer c JOIN orders o ON c.zip = o.zip", &catalog())
            .unwrap_err();
        assert!(err.to_string().contains("ambiguous"));
    }

    #[test]
    fn unknown_column_rejected() {
        assert!(run("SELECT nope FROM customer", &catalog()).is_err());
    }

    #[test]
    fn unknown_table_rejected() {
        assert!(run("SELECT * FROM nope", &catalog()).is_err());
    }

    #[test]
    fn bare_column_outside_group_by_rejected() {
        assert!(run("SELECT street, COUNT(*) FROM customer GROUP BY zip", &catalog()).is_err());
    }

    #[test]
    fn arithmetic_in_select() {
        let rs = run("SELECT amount * 2 FROM orders ORDER BY amount LIMIT 1", &catalog()).unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(20));
    }

    #[test]
    fn having_on_global_aggregate() {
        let rs = run("SELECT COUNT(*) FROM customer HAVING COUNT(*) > 100", &catalog()).unwrap();
        assert!(rs.is_empty());
    }

    #[test]
    fn render_text_aligns() {
        let rs = run("SELECT cc, COUNT(*) AS n FROM customer GROUP BY cc ORDER BY cc", &catalog())
            .unwrap();
        let text = rs.render_text();
        assert!(text.starts_with("cc"));
        assert!(text.lines().count() == 3);
    }

    #[test]
    fn duplicate_binding_rejected() {
        assert!(run("SELECT * FROM customer c JOIN orders c ON c.zip = c.zip", &catalog()).is_err());
    }
}
