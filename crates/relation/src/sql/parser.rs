//! Recursive-descent parser for the SQL subset.

use super::ast::*;
use super::token::{lex, Spanned, Tok};
use crate::error::{Error, Result};
use crate::expr::{ArithOp, CmpOp};
use crate::value::Value;

/// Parse one `SELECT` statement (optionally `;`-terminated).
pub fn parse_query(input: &str) -> Result<Query> {
    let toks = lex(input)?;
    let mut p = Parser { toks, i: 0 };
    let q = p.query()?;
    p.eat_symbol(";").ok();
    if p.i != p.toks.len() {
        return Err(p.err("trailing tokens after query"));
    }
    Ok(q)
}

struct Parser {
    toks: Vec<Spanned>,
    i: usize,
}

impl Parser {
    fn err(&self, msg: impl Into<String>) -> Error {
        let position = self.toks.get(self.i).map(|t| t.pos).unwrap_or(usize::MAX);
        Error::SqlParse { position, message: msg.into() }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.i).map(|s| &s.tok)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.i).map(|s| s.tok.clone());
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    /// Is the next token the given keyword (case-insensitive)?
    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Word(w)) if w.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`")))
        }
    }

    fn eat_symbol(&mut self, s: &str) -> Result<()> {
        match self.peek() {
            Some(Tok::Symbol(sym)) if *sym == s => {
                self.i += 1;
                Ok(())
            }
            _ => Err(self.err(format!("expected `{s}`"))),
        }
    }

    fn peek_symbol(&self, s: &str) -> bool {
        matches!(self.peek(), Some(Tok::Symbol(sym)) if *sym == s)
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Tok::Word(w)) => Ok(w),
            _ => Err(self.err("expected identifier")),
        }
    }

    fn query(&mut self) -> Result<Query> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let items = self.select_items()?;
        self.expect_kw("FROM")?;
        let from = self.table_ref()?;
        let mut joins = Vec::new();
        loop {
            let is_join = if self.peek_kw("JOIN") {
                true
            } else if self.peek_kw("INNER") {
                self.i += 1;
                if !self.peek_kw("JOIN") {
                    return Err(self.err("expected JOIN after INNER"));
                }
                true
            } else {
                false
            };
            if !is_join {
                break;
            }
            self.expect_kw("JOIN")?;
            let t = self.table_ref()?;
            self.expect_kw("ON")?;
            let on = self.expr()?;
            joins.push((t, on));
        }
        let where_clause = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.column_ref()?);
                if self.eat_symbol(",").is_err() {
                    break;
                }
            }
        }
        let having = if self.eat_kw("HAVING") { Some(self.expr()?) } else { None };
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                order_by.push(OrderKey { expr, desc });
                if self.eat_symbol(",").is_err() {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("LIMIT") {
            match self.next() {
                Some(Tok::Int(n)) if n >= 0 => Some(n as usize),
                _ => return Err(self.err("expected non-negative integer after LIMIT")),
            }
        } else {
            None
        };
        Ok(Query { distinct, items, from, joins, where_clause, group_by, having, order_by, limit })
    }

    fn select_items(&mut self) -> Result<Vec<SelectItem>> {
        let mut items = Vec::new();
        loop {
            if self.peek_symbol("*") {
                self.i += 1;
                items.push(SelectItem::Wildcard);
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_kw("AS") { Some(self.ident()?) } else { None };
                items.push(SelectItem::Expr { expr, alias });
            }
            if self.eat_symbol(",").is_err() {
                break;
            }
        }
        Ok(items)
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let name = self.ident()?;
        // An alias is any following word that is not a clause keyword.
        let alias = match self.peek() {
            Some(Tok::Word(w)) if !is_clause_keyword(w) => Some(self.ident()?),
            _ => None,
        };
        Ok(TableRef { name, alias })
    }

    fn column_ref(&mut self) -> Result<ColumnRef> {
        let first = self.ident()?;
        if self.peek_symbol(".") {
            self.i += 1;
            let col = self.ident()?;
            Ok(ColumnRef { table: Some(first), column: col })
        } else {
            Ok(ColumnRef { table: None, column: first })
        }
    }

    // ---- expressions (precedence climbing) ----

    fn expr(&mut self) -> Result<SqlExpr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<SqlExpr> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("OR") {
            let rhs = self.and_expr()?;
            lhs = SqlExpr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<SqlExpr> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("AND") {
            let rhs = self.not_expr()?;
            lhs = SqlExpr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<SqlExpr> {
        if self.eat_kw("NOT") {
            let inner = self.not_expr()?;
            return Ok(SqlExpr::Not(Box::new(inner)));
        }
        self.predicate()
    }

    fn predicate(&mut self) -> Result<SqlExpr> {
        let lhs = self.additive()?;
        // postfix predicates
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(if negated {
                SqlExpr::IsNotNull(Box::new(lhs))
            } else {
                SqlExpr::IsNull(Box::new(lhs))
            });
        }
        if self.eat_kw("IN") {
            self.eat_symbol("(")?;
            let mut vals = Vec::new();
            loop {
                vals.push(self.literal()?);
                if self.eat_symbol(",").is_err() {
                    break;
                }
            }
            self.eat_symbol(")")?;
            return Ok(SqlExpr::InList(Box::new(lhs), vals));
        }
        if self.eat_kw("LIKE") {
            match self.next() {
                Some(Tok::Str(p)) => return Ok(SqlExpr::Like(Box::new(lhs), p)),
                _ => return Err(self.err("expected string literal after LIKE")),
            }
        }
        if self.eat_kw("NOT") {
            // NOT IN / NOT LIKE
            if self.eat_kw("IN") {
                self.eat_symbol("(")?;
                let mut vals = Vec::new();
                loop {
                    vals.push(self.literal()?);
                    if self.eat_symbol(",").is_err() {
                        break;
                    }
                }
                self.eat_symbol(")")?;
                return Ok(SqlExpr::Not(Box::new(SqlExpr::InList(Box::new(lhs), vals))));
            }
            if self.eat_kw("LIKE") {
                match self.next() {
                    Some(Tok::Str(p)) => {
                        return Ok(SqlExpr::Not(Box::new(SqlExpr::Like(Box::new(lhs), p))))
                    }
                    _ => return Err(self.err("expected string literal after NOT LIKE")),
                }
            }
            return Err(self.err("expected IN or LIKE after NOT"));
        }
        let op = match self.peek() {
            Some(Tok::Symbol("=")) => Some(CmpOp::Eq),
            Some(Tok::Symbol("<>")) => Some(CmpOp::Ne),
            Some(Tok::Symbol("<")) => Some(CmpOp::Lt),
            Some(Tok::Symbol("<=")) => Some(CmpOp::Le),
            Some(Tok::Symbol(">")) => Some(CmpOp::Gt),
            Some(Tok::Symbol(">=")) => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.i += 1;
            let rhs = self.additive()?;
            return Ok(SqlExpr::Cmp(op, Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<SqlExpr> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = if self.peek_symbol("+") {
                ArithOp::Add
            } else if self.peek_symbol("-") {
                ArithOp::Sub
            } else {
                break;
            };
            self.i += 1;
            let rhs = self.multiplicative()?;
            lhs = SqlExpr::Arith(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<SqlExpr> {
        let mut lhs = self.primary()?;
        loop {
            let op = if self.peek_symbol("*") {
                ArithOp::Mul
            } else if self.peek_symbol("/") {
                ArithOp::Div
            } else {
                break;
            };
            self.i += 1;
            let rhs = self.primary()?;
            lhs = SqlExpr::Arith(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn literal(&mut self) -> Result<Value> {
        match self.next() {
            Some(Tok::Str(s)) => Ok(Value::str(&s)),
            Some(Tok::Int(n)) => Ok(Value::Int(n)),
            Some(Tok::Float(f)) => Ok(Value::Float(f)),
            Some(Tok::Word(w)) if w.eq_ignore_ascii_case("NULL") => Ok(Value::Null),
            Some(Tok::Word(w)) if w.eq_ignore_ascii_case("TRUE") => Ok(Value::Bool(true)),
            Some(Tok::Word(w)) if w.eq_ignore_ascii_case("FALSE") => Ok(Value::Bool(false)),
            Some(Tok::Symbol("-")) => match self.next() {
                Some(Tok::Int(n)) => Ok(Value::Int(-n)),
                Some(Tok::Float(f)) => Ok(Value::Float(-f)),
                _ => Err(self.err("expected number after `-`")),
            },
            _ => Err(self.err("expected literal")),
        }
    }

    fn primary(&mut self) -> Result<SqlExpr> {
        match self.peek().cloned() {
            Some(Tok::Symbol("(")) => {
                self.i += 1;
                let e = self.expr()?;
                self.eat_symbol(")")?;
                Ok(e)
            }
            Some(Tok::Symbol("-"))
            | Some(Tok::Str(_))
            | Some(Tok::Int(_))
            | Some(Tok::Float(_)) => Ok(SqlExpr::Literal(self.literal()?)),
            Some(Tok::Word(w)) => {
                if let Some(agg) = aggregate_name(&w) {
                    if matches!(self.toks.get(self.i + 1), Some(s) if s.tok == Tok::Symbol("(")) {
                        self.i += 2; // word + (
                                     // COUNT(*) special case
                        if matches!(agg, Aggregate::CountStar | Aggregate::Count { .. })
                            && self.peek_symbol("*")
                        {
                            self.i += 1;
                            self.eat_symbol(")")?;
                            return Ok(SqlExpr::Agg(Aggregate::CountStar, None));
                        }
                        let distinct = self.eat_kw("DISTINCT");
                        let inner = self.expr()?;
                        self.eat_symbol(")")?;
                        let agg = match agg {
                            Aggregate::CountStar | Aggregate::Count { .. } => {
                                Aggregate::Count { distinct }
                            }
                            other => {
                                if distinct {
                                    return Err(self.err("DISTINCT only supported in COUNT"));
                                }
                                other
                            }
                        };
                        return Ok(SqlExpr::Agg(agg, Some(Box::new(inner))));
                    }
                }
                if w.eq_ignore_ascii_case("NULL")
                    || w.eq_ignore_ascii_case("TRUE")
                    || w.eq_ignore_ascii_case("FALSE")
                {
                    return Ok(SqlExpr::Literal(self.literal()?));
                }
                let col = self.column_ref()?;
                Ok(SqlExpr::Column(col))
            }
            _ => Err(self.err("expected expression")),
        }
    }
}

fn aggregate_name(w: &str) -> Option<Aggregate> {
    if w.eq_ignore_ascii_case("COUNT") {
        Some(Aggregate::Count { distinct: false })
    } else if w.eq_ignore_ascii_case("SUM") {
        Some(Aggregate::Sum)
    } else if w.eq_ignore_ascii_case("MIN") {
        Some(Aggregate::Min)
    } else if w.eq_ignore_ascii_case("MAX") {
        Some(Aggregate::Max)
    } else if w.eq_ignore_ascii_case("AVG") {
        Some(Aggregate::Avg)
    } else {
        None
    }
}

fn is_clause_keyword(w: &str) -> bool {
    const KWS: &[&str] = &[
        "JOIN", "INNER", "ON", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "AS", "AND", "OR",
        "NOT", "IN", "LIKE", "IS", "BY", "ASC", "DESC", "SELECT", "FROM", "DISTINCT",
    ];
    KWS.iter().any(|k| w.eq_ignore_ascii_case(k))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_select() {
        let q = parse_query("SELECT * FROM r").unwrap();
        assert_eq!(q.items, vec![SelectItem::Wildcard]);
        assert_eq!(q.from.name, "r");
        assert!(q.where_clause.is_none());
    }

    #[test]
    fn where_and_group_having() {
        let q = parse_query(
            "SELECT zip, COUNT(DISTINCT street) AS n FROM customer \
             WHERE cc = '44' GROUP BY zip HAVING COUNT(DISTINCT street) > 1",
        )
        .unwrap();
        assert_eq!(q.group_by.len(), 1);
        assert!(q.having.is_some());
        match &q.items[1] {
            SelectItem::Expr { expr: SqlExpr::Agg(Aggregate::Count { distinct }, _), alias } => {
                assert!(*distinct);
                assert_eq!(alias.as_deref(), Some("n"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn joins_with_alias() {
        let q =
            parse_query("SELECT t.a, u.b FROM r t JOIN s u ON t.a = u.a WHERE u.b <> 'x'").unwrap();
        assert_eq!(q.from.binding(), "t");
        assert_eq!(q.joins.len(), 1);
        assert_eq!(q.joins[0].0.binding(), "u");
    }

    #[test]
    fn order_limit_distinct() {
        let q = parse_query("SELECT DISTINCT a FROM r ORDER BY a DESC, b LIMIT 10").unwrap();
        assert!(q.distinct);
        assert_eq!(q.order_by.len(), 2);
        assert!(q.order_by[0].desc);
        assert!(!q.order_by[1].desc);
        assert_eq!(q.limit, Some(10));
    }

    #[test]
    fn predicates() {
        let q = parse_query(
            "SELECT * FROM r WHERE a IS NOT NULL AND b IN ('x','y') AND c LIKE 'a%' AND NOT d = 1",
        )
        .unwrap();
        assert!(q.where_clause.is_some());
    }

    #[test]
    fn not_in_and_not_like() {
        let q = parse_query("SELECT * FROM r WHERE a NOT IN (1,2) AND b NOT LIKE '%z'").unwrap();
        assert!(matches!(q.where_clause, Some(SqlExpr::And(_, _))));
    }

    #[test]
    fn arithmetic_precedence() {
        let q = parse_query("SELECT a + b * 2 FROM r").unwrap();
        match &q.items[0] {
            SelectItem::Expr { expr: SqlExpr::Arith(ArithOp::Add, _, rhs), .. } => {
                assert!(matches!(**rhs, SqlExpr::Arith(ArithOp::Mul, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn count_star() {
        let q = parse_query("SELECT COUNT(*) FROM r").unwrap();
        match &q.items[0] {
            SelectItem::Expr { expr: SqlExpr::Agg(Aggregate::CountStar, None), .. } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn negative_literal() {
        let q = parse_query("SELECT * FROM r WHERE a = -5").unwrap();
        match q.where_clause.unwrap() {
            SqlExpr::Cmp(_, _, rhs) => {
                assert_eq!(*rhs, SqlExpr::Literal(Value::Int(-5)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn trailing_tokens_rejected() {
        assert!(parse_query("SELECT * FROM r garbage garbage").is_err());
    }

    #[test]
    fn distinct_in_sum_rejected() {
        assert!(parse_query("SELECT SUM(DISTINCT a) FROM r").is_err());
    }

    #[test]
    fn missing_from_rejected() {
        assert!(parse_query("SELECT a").is_err());
    }

    #[test]
    fn semicolon_ok() {
        assert!(parse_query("SELECT * FROM r;").is_ok());
    }
}
