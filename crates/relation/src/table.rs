//! In-memory tables with stable tuple identities.
//!
//! Stability of [`TupleId`]s matters downstream: violation reports, repair
//! logs and incremental detection all refer to tuples by id across
//! insertions and deletions. Rows are therefore stored in a slab with
//! tombstones — deleting never renumbers survivors.
//!
//! Every table also owns a [`ValuePool`] and keeps a symbol mirror of
//! each live row: cells are interned to dense [`Sym`]s at push/set time,
//! so the grouping kernels downstream (detection, repair, discovery,
//! indexes) hash and compare `u32`s instead of cloning and re-hashing
//! [`Value`]s per scan — the load-time half of the interned group-by
//! kernel ([`crate::groupby`]).

use crate::error::{Error, Result};
use crate::pool::{Sym, ValuePool};
use crate::schema::Schema;
use crate::value::Value;

/// Stable identifier of a tuple within one [`Table`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TupleId(pub u64);

impl std::fmt::Display for TupleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// One stored row: its values and their interned symbol mirror, kept
/// in lockstep by every mutation.
type StoredRow = (Vec<Value>, Box<[Sym]>);

/// An in-memory relation instance.
#[derive(Clone, Debug)]
pub struct Table {
    schema: Schema,
    /// Slab of rows; `None` = tombstone for a deleted tuple.
    rows: Vec<Option<StoredRow>>,
    pool: ValuePool,
    live: usize,
}

impl Table {
    /// Empty table over `schema`.
    pub fn new(schema: Schema) -> Self {
        Table { schema, rows: Vec::new(), pool: ValuePool::new(), live: 0 }
    }

    /// Empty table with row capacity preallocated.
    pub fn with_capacity(schema: Schema, cap: usize) -> Self {
        Table { schema, rows: Vec::with_capacity(cap), pool: ValuePool::new(), live: 0 }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of live tuples.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live tuples.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Insert a row, validating arity and types. Returns its stable id.
    /// Cells are interned into the table's [`ValuePool`] here — this is
    /// the "pay once at append time" half of the interned kernel.
    pub fn push(&mut self, row: Vec<Value>) -> Result<TupleId> {
        self.schema.check_row(&row)?;
        Ok(self.push_unchecked(row))
    }

    /// Insert without validation. For bulk loads from trusted generators.
    ///
    /// Invariants still required: `row.len() == schema.arity()`; callers
    /// that cannot guarantee types should use [`Table::push`].
    pub fn push_unchecked(&mut self, row: Vec<Value>) -> TupleId {
        debug_assert_eq!(row.len(), self.schema.arity());
        let id = TupleId(self.rows.len() as u64);
        let syms: Box<[Sym]> = row.iter().map(|v| self.pool.intern(v)).collect();
        self.rows.push(Some((row, syms)));
        self.live += 1;
        id
    }

    /// Delete a tuple. Idempotent errors: deleting twice fails.
    pub fn delete(&mut self, id: TupleId) -> Result<Vec<Value>> {
        let slot = self.rows.get_mut(id.0 as usize).ok_or(Error::NoSuchTuple(id.0))?;
        match slot.take() {
            Some((row, _)) => {
                self.live -= 1;
                Ok(row)
            }
            None => Err(Error::NoSuchTuple(id.0)),
        }
    }

    /// Fetch a live row.
    pub fn get(&self, id: TupleId) -> Result<&[Value]> {
        self.rows
            .get(id.0 as usize)
            .and_then(|r| r.as_ref().map(|(v, _)| v.as_slice()))
            .ok_or(Error::NoSuchTuple(id.0))
    }

    /// The table's value pool — symbols in [`Table::sym_row`]s index it.
    pub fn pool(&self) -> &ValuePool {
        &self.pool
    }

    /// Fetch a live row's interned symbol mirror.
    pub fn sym_row(&self, id: TupleId) -> Result<&[Sym]> {
        self.rows
            .get(id.0 as usize)
            .and_then(|r| r.as_ref().map(|(_, s)| s.as_ref()))
            .ok_or(Error::NoSuchTuple(id.0))
    }

    /// Is `id` a live tuple?
    pub fn contains(&self, id: TupleId) -> bool {
        matches!(self.rows.get(id.0 as usize), Some(Some(_)))
    }

    /// Overwrite a single cell of a live tuple.
    pub fn set_cell(&mut self, id: TupleId, attr: usize, v: Value) -> Result<()> {
        if attr >= self.schema.arity() {
            return Err(Error::UnknownAttribute {
                relation: self.schema.name().into(),
                attribute: format!("#{attr}"),
            });
        }
        if !self.schema.attribute(attr).ty.admits(&v) {
            return Err(Error::TypeMismatch {
                attribute: self.schema.attr_name(attr).into(),
                expected: self.schema.attribute(attr).ty.to_string(),
                got: v.to_string(),
            });
        }
        let sym = self.pool.intern(&v);
        let (row, syms) = self
            .rows
            .get_mut(id.0 as usize)
            .and_then(|r| r.as_mut())
            .ok_or(Error::NoSuchTuple(id.0))?;
        row[attr] = v;
        syms[attr] = sym;
        Ok(())
    }

    /// Iterate over live `(id, row)` pairs in id order.
    pub fn rows(&self) -> impl Iterator<Item = (TupleId, &[Value])> {
        self.rows
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|(row, _)| (TupleId(i as u64), row.as_slice())))
    }

    /// Iterate over live `(id, symbol row)` pairs in id order — the
    /// input the grouping kernels scan.
    pub fn sym_rows(&self) -> impl Iterator<Item = (TupleId, &[Sym])> {
        self.rows
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|(_, s)| (TupleId(i as u64), s.as_ref())))
    }

    /// Iterate over live `(id, row, symbol row)` triples — for scans
    /// that group on symbols but report values.
    pub fn rows_with_syms(&self) -> impl Iterator<Item = (TupleId, &[Value], &[Sym])> {
        self.rows.iter().enumerate().filter_map(|(i, r)| {
            r.as_ref().map(|(row, s)| (TupleId(i as u64), row.as_slice(), s.as_ref()))
        })
    }

    /// All live tuple ids in order.
    pub fn tuple_ids(&self) -> impl Iterator<Item = TupleId> + '_ {
        self.rows.iter().enumerate().filter_map(|(i, r)| r.as_ref().map(|_| TupleId(i as u64)))
    }

    /// Project a live row onto a list of attribute positions.
    pub fn project(&self, id: TupleId, attrs: &[usize]) -> Result<Vec<Value>> {
        let row = self.get(id)?;
        Ok(attrs.iter().map(|&a| row[a].clone()).collect())
    }

    /// Deep-copy the live rows into a fresh table (compacting ids).
    pub fn compacted(&self) -> Table {
        let mut t = Table::with_capacity(self.schema.clone(), self.live);
        for (_, row) in self.rows() {
            t.push_unchecked(row.to_vec());
        }
        t
    }

    /// Total number of cells in live tuples.
    pub fn cell_count(&self) -> usize {
        self.live * self.schema.arity()
    }

    /// Count of cells that differ between `self` and `other`, matched by
    /// tuple id. Tuples present in one but not the other count all their
    /// cells as differing. This is the "repair distance" of Cong et al.
    /// with unit weights.
    pub fn diff_cells(&self, other: &Table) -> usize {
        let arity = self.schema.arity();
        let n = self.rows.len().max(other.rows.len());
        let mut diff = 0;
        for i in 0..n {
            let a = self.rows.get(i).and_then(|r| r.as_ref().map(|(v, _)| v));
            let b = other.rows.get(i).and_then(|r| r.as_ref().map(|(v, _)| v));
            match (a, b) {
                (Some(ra), Some(rb)) => {
                    diff += ra.iter().zip(rb).filter(|(x, y)| x != y).count();
                }
                (Some(_), None) | (None, Some(_)) => diff += arity,
                (None, None) => {}
            }
        }
        diff
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Type;

    fn tbl() -> Table {
        let s = Schema::builder("r").attr("a", Type::Int).attr("b", Type::Str).build();
        Table::new(s)
    }

    #[test]
    fn push_get_len() {
        let mut t = tbl();
        let id = t.push(vec![Value::Int(1), "x".into()]).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(id).unwrap()[0], Value::Int(1));
    }

    #[test]
    fn push_rejects_bad_rows() {
        let mut t = tbl();
        assert!(t.push(vec![Value::Int(1)]).is_err());
        assert!(t.push(vec!["x".into(), "y".into()]).is_err());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn delete_is_stable() {
        let mut t = tbl();
        let a = t.push(vec![Value::Int(1), "x".into()]).unwrap();
        let b = t.push(vec![Value::Int(2), "y".into()]).unwrap();
        t.delete(a).unwrap();
        assert_eq!(t.len(), 1);
        // b's id survives a's deletion.
        assert_eq!(t.get(b).unwrap()[0], Value::Int(2));
        assert!(t.get(a).is_err());
        assert!(t.delete(a).is_err());
    }

    #[test]
    fn rows_skips_tombstones() {
        let mut t = tbl();
        let a = t.push(vec![Value::Int(1), "x".into()]).unwrap();
        t.push(vec![Value::Int(2), "y".into()]).unwrap();
        t.delete(a).unwrap();
        let ids: Vec<_> = t.rows().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![TupleId(1)]);
    }

    #[test]
    fn set_cell_checks_types() {
        let mut t = tbl();
        let id = t.push(vec![Value::Int(1), "x".into()]).unwrap();
        t.set_cell(id, 1, "z".into()).unwrap();
        assert_eq!(t.get(id).unwrap()[1], Value::from("z"));
        assert!(t.set_cell(id, 0, "not an int".into()).is_err());
        assert!(t.set_cell(id, 9, Value::Int(0)).is_err());
    }

    #[test]
    fn project() {
        let mut t = tbl();
        let id = t.push(vec![Value::Int(5), "q".into()]).unwrap();
        assert_eq!(t.project(id, &[1]).unwrap(), vec![Value::from("q")]);
    }

    #[test]
    fn diff_cells_counts_changes_and_missing() {
        let mut a = tbl();
        let mut b = tbl();
        let i1 = a.push(vec![Value::Int(1), "x".into()]).unwrap();
        a.push(vec![Value::Int(2), "y".into()]).unwrap();
        b.push(vec![Value::Int(1), "x".into()]).unwrap();
        b.push(vec![Value::Int(2), "z".into()]).unwrap();
        assert_eq!(a.diff_cells(&b), 1);
        // Deleting a tuple counts all its cells.
        a.delete(i1).unwrap();
        assert_eq!(a.diff_cells(&b), 1 + 2);
    }

    #[test]
    fn sym_mirror_tracks_rows() {
        let mut t = tbl();
        let a = t.push(vec![Value::Int(1), "x".into()]).unwrap();
        let b = t.push(vec![Value::Int(1), "y".into()]).unwrap();
        // Equal cells share a symbol; distinct cells differ.
        assert_eq!(t.sym_row(a).unwrap()[0], t.sym_row(b).unwrap()[0]);
        assert_ne!(t.sym_row(a).unwrap()[1], t.sym_row(b).unwrap()[1]);
        // set_cell re-interns the mirror in lockstep.
        t.set_cell(b, 1, "x".into()).unwrap();
        assert_eq!(t.sym_row(a).unwrap()[1], t.sym_row(b).unwrap()[1]);
        assert_eq!(t.pool().value(t.sym_row(b).unwrap()[1]), &Value::from("x"));
        // Foreign-value lookups resolve only interned values.
        assert!(t.pool().lookup(&"x".into()).is_some());
        assert!(t.pool().lookup(&"never-seen".into()).is_none());
        // Deleting keeps ids and mirrors of survivors intact.
        t.delete(a).unwrap();
        assert!(t.sym_row(a).is_err());
        assert_eq!(t.sym_row(b).unwrap().len(), 2);
    }

    #[test]
    fn compacted_renumbers() {
        let mut t = tbl();
        let a = t.push(vec![Value::Int(1), "x".into()]).unwrap();
        t.push(vec![Value::Int(2), "y".into()]).unwrap();
        t.delete(a).unwrap();
        let c = t.compacted();
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(TupleId(0)).unwrap()[0], Value::Int(2));
    }
}
