//! Columnar tables with stable tuple identities.
//!
//! Stability of [`TupleId`]s matters downstream: violation reports, repair
//! logs and incremental detection all refer to tuples by id across
//! insertions and deletions. A tuple id is its *slot* — a position that
//! is never reused — and deletion clears a bit in a tombstone bitmap
//! rather than moving data, so deleting never renumbers survivors.
//!
//! Storage is **columnar-primary**: one dense `Vec<Sym>` per attribute,
//! interned against the table's [`ValuePool`] at push/set time. There is
//! no row-major store at all — `Value`s are materialised lazily from the
//! pool on demand (an `Arc` bump for strings, a copy for scalars). The
//! grouping kernels downstream (detection, repair, discovery, indexes)
//! scan column slices directly via [`Table::col`] / [`Table::proj`],
//! hashing and comparing `u32`s with no per-row fetch at all — the
//! storage half of the interned group-by kernel ([`crate::groupby`]).

use crate::error::{Error, Result};
use crate::groupby::ColProj;
use crate::pool::{Sym, ValuePool};
use crate::schema::Schema;
use crate::value::Value;

/// Stable identifier of a tuple within one [`Table`]: its slot index.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TupleId(pub u64);

impl std::fmt::Display for TupleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// An in-memory relation instance, stored column-major.
#[derive(Clone, Debug)]
pub struct Table {
    schema: Schema,
    /// One dense symbol vector per attribute; all have length
    /// [`Table::slots`]. Dead slots keep their last symbol (never
    /// dereferenced — every read is guarded by the live bitmap).
    cols: Vec<Vec<Sym>>,
    /// Live bitmap, one bit per slot (1 = live, 0 = tombstone).
    live: Vec<u64>,
    /// Total slots ever allocated (live + tombstoned).
    slots: usize,
    /// Number of set bits in `live`.
    live_count: usize,
    pool: ValuePool,
}

impl Table {
    /// Empty table over `schema`.
    pub fn new(schema: Schema) -> Self {
        let cols = vec![Vec::new(); schema.arity()];
        Table { schema, cols, live: Vec::new(), slots: 0, live_count: 0, pool: ValuePool::new() }
    }

    /// Empty table with row capacity preallocated.
    pub fn with_capacity(schema: Schema, cap: usize) -> Self {
        let cols = vec![Vec::with_capacity(cap); schema.arity()];
        Table {
            schema,
            cols,
            live: Vec::with_capacity(cap.div_ceil(64)),
            slots: 0,
            live_count: 0,
            pool: ValuePool::new(),
        }
    }

    /// Rebuild a table from its raw columnar parts — the snapshot
    /// loader's entry point. `cols` must all have length `slots`, every
    /// live slot's symbols must index `pool`, and `live` must hold
    /// `slots.div_ceil(64)` words with no bits set at or past `slots`.
    pub(crate) fn from_parts(
        schema: Schema,
        cols: Vec<Vec<Sym>>,
        live: Vec<u64>,
        slots: usize,
        pool: ValuePool,
    ) -> Self {
        let live_count = live.iter().map(|w| w.count_ones() as usize).sum();
        Table { schema, cols, live, slots, live_count, pool }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of live tuples.
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// True if no live tuples.
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }

    /// Total slots ever allocated — the exclusive upper bound on live
    /// slot indices (and on `TupleId` values). Column slices returned by
    /// [`Table::col`] have exactly this length.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Is slot `slot` live?
    #[inline]
    pub fn is_live(&self, slot: usize) -> bool {
        slot < self.slots && (self.live[slot >> 6] >> (slot & 63)) & 1 == 1
    }

    /// One attribute's dense symbol column (length [`Table::slots`]).
    /// Dead slots hold stale symbols; mask with [`Table::is_live`] or
    /// iterate [`Table::live_slots`].
    #[inline]
    pub fn col(&self, attr: usize) -> &[Sym] {
        &self.cols[attr]
    }

    /// Live slot indices in ascending order — the scan driver for every
    /// columnar kernel. Word-at-a-time over the bitmap.
    pub fn live_slots(&self) -> impl Iterator<Item = usize> + '_ {
        self.live.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let b = w.trailing_zeros() as usize;
                w &= w - 1;
                Some((wi << 6) | b)
            })
        })
    }

    /// A borrowed column projection onto `attrs` — the columnar probe
    /// the grouping kernels key on (see [`ColProj`]).
    pub fn proj<'a>(&'a self, attrs: &[usize]) -> ColProj<'a> {
        ColProj::new(attrs.iter().map(|&a| self.cols[a].as_slice()).collect())
    }

    /// Insert a row, validating arity and types. Returns its stable id.
    /// Cells are interned into the table's [`ValuePool`] here — this is
    /// the "pay once at append time" half of the interned kernel.
    pub fn push(&mut self, row: Vec<Value>) -> Result<TupleId> {
        self.schema.check_row(&row)?;
        Ok(self.push_unchecked(row))
    }

    /// Insert without validation. For bulk loads from trusted generators.
    ///
    /// Invariants still required: `row.len() == schema.arity()`; callers
    /// that cannot guarantee types should use [`Table::push`].
    pub fn push_unchecked(&mut self, row: Vec<Value>) -> TupleId {
        debug_assert_eq!(row.len(), self.schema.arity());
        let slot = self.slots;
        for (col, v) in self.cols.iter_mut().zip(&row) {
            let sym = self.pool.intern(v);
            col.push(sym);
        }
        if slot >> 6 >= self.live.len() {
            self.live.push(0);
        }
        self.live[slot >> 6] |= 1u64 << (slot & 63);
        self.slots += 1;
        self.live_count += 1;
        TupleId(slot as u64)
    }

    /// Delete a tuple, returning its former row. Idempotent errors:
    /// deleting twice fails. The slot's symbols stay in the columns
    /// (stale, bitmap-masked); only the live bit clears.
    pub fn delete(&mut self, id: TupleId) -> Result<Vec<Value>> {
        let slot = id.0 as usize;
        if !self.is_live(slot) {
            return Err(Error::NoSuchTuple(id.0));
        }
        let row = self.materialize(slot);
        self.live[slot >> 6] &= !(1u64 << (slot & 63));
        self.live_count -= 1;
        Ok(row)
    }

    /// Materialise a live row from the pool.
    pub fn get(&self, id: TupleId) -> Result<Vec<Value>> {
        let slot = id.0 as usize;
        if !self.is_live(slot) {
            return Err(Error::NoSuchTuple(id.0));
        }
        Ok(self.materialize(slot))
    }

    /// One cell of a live row, borrowed from the pool (no clone).
    pub fn value_at(&self, id: TupleId, attr: usize) -> Result<&Value> {
        let slot = id.0 as usize;
        if !self.is_live(slot) {
            return Err(Error::NoSuchTuple(id.0));
        }
        Ok(self.pool.value(self.cols[attr][slot]))
    }

    /// One cell's interned symbol (live rows only).
    pub fn sym_at(&self, id: TupleId, attr: usize) -> Result<Sym> {
        let slot = id.0 as usize;
        if !self.is_live(slot) {
            return Err(Error::NoSuchTuple(id.0));
        }
        Ok(self.cols[attr][slot])
    }

    /// The table's value pool — column symbols index it.
    pub fn pool(&self) -> &ValuePool {
        &self.pool
    }

    /// A live row's interned symbols, gathered across the columns.
    pub fn sym_row(&self, id: TupleId) -> Result<Vec<Sym>> {
        let slot = id.0 as usize;
        if !self.is_live(slot) {
            return Err(Error::NoSuchTuple(id.0));
        }
        Ok(self.cols.iter().map(|c| c[slot]).collect())
    }

    /// Is `id` a live tuple?
    pub fn contains(&self, id: TupleId) -> bool {
        self.is_live(id.0 as usize)
    }

    /// Overwrite a single cell of a live tuple.
    pub fn set_cell(&mut self, id: TupleId, attr: usize, v: Value) -> Result<()> {
        if attr >= self.schema.arity() {
            return Err(Error::UnknownAttribute {
                relation: self.schema.name().into(),
                attribute: format!("#{attr}"),
            });
        }
        if !self.schema.attribute(attr).ty.admits(&v) {
            return Err(Error::TypeMismatch {
                attribute: self.schema.attr_name(attr).into(),
                expected: self.schema.attribute(attr).ty.to_string(),
                got: v.to_string(),
            });
        }
        let slot = id.0 as usize;
        if !self.is_live(slot) {
            return Err(Error::NoSuchTuple(id.0));
        }
        let sym = self.pool.intern(&v);
        self.cols[attr][slot] = sym;
        Ok(())
    }

    fn materialize(&self, slot: usize) -> Vec<Value> {
        self.cols.iter().map(|c| self.pool.value(c[slot]).clone()).collect()
    }

    /// Iterate over live `(id, row)` pairs in id order, materialising
    /// each row from the pool. Columnar kernels should prefer
    /// [`Table::col`]/[`Table::proj`]; this is the convenience path for
    /// value-level consumers.
    pub fn rows(&self) -> impl Iterator<Item = (TupleId, Vec<Value>)> + '_ {
        self.live_slots().map(|slot| (TupleId(slot as u64), self.materialize(slot)))
    }

    /// All live tuple ids in order.
    pub fn tuple_ids(&self) -> impl Iterator<Item = TupleId> + '_ {
        self.live_slots().map(|slot| TupleId(slot as u64))
    }

    /// Project a live row onto a list of attribute positions.
    pub fn project(&self, id: TupleId, attrs: &[usize]) -> Result<Vec<Value>> {
        let slot = id.0 as usize;
        if !self.is_live(slot) {
            return Err(Error::NoSuchTuple(id.0));
        }
        Ok(attrs.iter().map(|&a| self.pool.value(self.cols[a][slot]).clone()).collect())
    }

    /// Deep-copy the live rows into a fresh table (compacting ids and
    /// the pool — only symbols live rows reference survive).
    pub fn compacted(&self) -> Table {
        let mut t = Table::with_capacity(self.schema.clone(), self.live_count);
        for (_, row) in self.rows() {
            t.push_unchecked(row);
        }
        t
    }

    /// Total number of cells in live tuples.
    pub fn cell_count(&self) -> usize {
        self.live_count * self.schema.arity()
    }

    /// Count of cells that differ between `self` and `other`, matched by
    /// tuple id. Tuples present in one but not the other count all their
    /// cells as differing. This is the "repair distance" of Cong et al.
    /// with unit weights. Cells compare through each table's own pool —
    /// symbols are never compared across pools.
    pub fn diff_cells(&self, other: &Table) -> usize {
        let arity = self.schema.arity();
        let n = self.slots.max(other.slots);
        let mut diff = 0;
        for slot in 0..n {
            match (self.is_live(slot), other.is_live(slot)) {
                (true, true) => {
                    for a in 0..arity {
                        if self.pool.value(self.cols[a][slot])
                            != other.pool.value(other.cols[a][slot])
                        {
                            diff += 1;
                        }
                    }
                }
                (true, false) | (false, true) => diff += arity,
                (false, false) => {}
            }
        }
        diff
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Type;

    fn tbl() -> Table {
        let s = Schema::builder("r").attr("a", Type::Int).attr("b", Type::Str).build();
        Table::new(s)
    }

    #[test]
    fn push_get_len() {
        let mut t = tbl();
        let id = t.push(vec![Value::Int(1), "x".into()]).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(id).unwrap()[0], Value::Int(1));
    }

    #[test]
    fn push_rejects_bad_rows() {
        let mut t = tbl();
        assert!(t.push(vec![Value::Int(1)]).is_err());
        assert!(t.push(vec!["x".into(), "y".into()]).is_err());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn delete_is_stable() {
        let mut t = tbl();
        let a = t.push(vec![Value::Int(1), "x".into()]).unwrap();
        let b = t.push(vec![Value::Int(2), "y".into()]).unwrap();
        let gone = t.delete(a).unwrap();
        assert_eq!(gone, vec![Value::Int(1), "x".into()]);
        assert_eq!(t.len(), 1);
        // b's id survives a's deletion.
        assert_eq!(t.get(b).unwrap()[0], Value::Int(2));
        assert!(t.get(a).is_err());
        assert!(t.delete(a).is_err());
    }

    #[test]
    fn rows_skips_tombstones() {
        let mut t = tbl();
        let a = t.push(vec![Value::Int(1), "x".into()]).unwrap();
        t.push(vec![Value::Int(2), "y".into()]).unwrap();
        t.delete(a).unwrap();
        let ids: Vec<_> = t.rows().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![TupleId(1)]);
        assert_eq!(t.live_slots().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn set_cell_checks_types() {
        let mut t = tbl();
        let id = t.push(vec![Value::Int(1), "x".into()]).unwrap();
        t.set_cell(id, 1, "z".into()).unwrap();
        assert_eq!(t.get(id).unwrap()[1], Value::from("z"));
        assert!(t.set_cell(id, 0, "not an int".into()).is_err());
        assert!(t.set_cell(id, 9, Value::Int(0)).is_err());
    }

    #[test]
    fn project() {
        let mut t = tbl();
        let id = t.push(vec![Value::Int(5), "q".into()]).unwrap();
        assert_eq!(t.project(id, &[1]).unwrap(), vec![Value::from("q")]);
    }

    #[test]
    fn diff_cells_counts_changes_and_missing() {
        let mut a = tbl();
        let mut b = tbl();
        let i1 = a.push(vec![Value::Int(1), "x".into()]).unwrap();
        a.push(vec![Value::Int(2), "y".into()]).unwrap();
        b.push(vec![Value::Int(1), "x".into()]).unwrap();
        b.push(vec![Value::Int(2), "z".into()]).unwrap();
        assert_eq!(a.diff_cells(&b), 1);
        // Deleting a tuple counts all its cells.
        a.delete(i1).unwrap();
        assert_eq!(a.diff_cells(&b), 1 + 2);
    }

    #[test]
    fn columns_track_cells() {
        let mut t = tbl();
        let a = t.push(vec![Value::Int(1), "x".into()]).unwrap();
        let b = t.push(vec![Value::Int(1), "y".into()]).unwrap();
        // Equal cells share a symbol; distinct cells differ.
        assert_eq!(t.sym_at(a, 0).unwrap(), t.sym_at(b, 0).unwrap());
        assert_ne!(t.sym_at(a, 1).unwrap(), t.sym_at(b, 1).unwrap());
        // Columns are dense: col(0)[slot] is the cell's symbol.
        assert_eq!(t.col(0)[a.0 as usize], t.sym_at(a, 0).unwrap());
        assert_eq!(t.col(1).len(), t.slots());
        // set_cell re-interns in place.
        t.set_cell(b, 1, "x".into()).unwrap();
        assert_eq!(t.sym_at(a, 1).unwrap(), t.sym_at(b, 1).unwrap());
        assert_eq!(t.pool().value(t.sym_at(b, 1).unwrap()), &Value::from("x"));
        assert_eq!(t.value_at(b, 1).unwrap(), &Value::from("x"));
        // Foreign-value lookups resolve only interned values.
        assert!(t.pool().lookup(&"x".into()).is_some());
        assert!(t.pool().lookup(&"never-seen".into()).is_none());
        // Deleting keeps ids and columns of survivors intact.
        t.delete(a).unwrap();
        assert!(t.sym_row(a).is_err());
        assert!(!t.is_live(a.0 as usize));
        assert_eq!(t.sym_row(b).unwrap().len(), 2);
    }

    #[test]
    fn proj_groups_like_keyproj() {
        let mut t = tbl();
        t.push(vec![Value::Int(1), "x".into()]).unwrap();
        t.push(vec![Value::Int(1), "y".into()]).unwrap();
        t.push(vec![Value::Int(2), "x".into()]).unwrap();
        let attrs = [0usize];
        let p = t.proj(&attrs);
        assert_eq!(p.hash_at(0), p.hash_at(1));
        assert_ne!(p.hash_at(0), p.hash_at(2));
        let k = p.key_at(0);
        assert!(p.matches_at(1, &k));
        assert!(!p.matches_at(2, &k));
    }

    #[test]
    fn compacted_renumbers() {
        let mut t = tbl();
        let a = t.push(vec![Value::Int(1), "x".into()]).unwrap();
        t.push(vec![Value::Int(2), "y".into()]).unwrap();
        t.delete(a).unwrap();
        let c = t.compacted();
        assert_eq!(c.len(), 1);
        assert_eq!(c.slots(), 1);
        assert_eq!(c.get(TupleId(0)).unwrap()[0], Value::Int(2));
        // The compacted pool drops symbols only dead rows referenced.
        assert!(c.pool().lookup(&Value::Int(1)).is_none());
    }
}
