//! # revival-relation
//!
//! The relational substrate underneath the `revival` data-cleaning stack.
//!
//! The systems surveyed by *"A Revival of Integrity Constraints for Data
//! Cleaning"* (Fan, Geerts, Jia — VLDB 2008) all operate over relational
//! data, and the Semandaq prototype in particular detects constraint
//! violations by running SQL over a DBMS. Since this reproduction must be
//! self-contained, this crate provides:
//!
//! * a typed [`Value`] model with a total order (NULL-aware, NaN-safe);
//! * [`Schema`]/[`Attribute`] descriptions, including optional finite
//!   domains (needed by CFD satisfiability analysis);
//! * an in-memory, **columnar** [`Table`] — dense per-attribute [`Sym`]
//!   columns over an interning [`ValuePool`], stable tuple identities,
//!   a tombstone bitmap, and secondary hash [`Index`]es;
//! * an on-disk snapshot format (module [`snapshot`], `.sdq` files)
//!   with memory-mapped opens;
//! * CSV reading/writing (module [`csv`]);
//! * scalar [`expr::Expr`]essions with an evaluator;
//! * a SQL subset (module [`sql`]) — lexer, parser, logical planner and
//!   executor — rich enough to run the detection queries that the CFD
//!   paper generates (`SELECT … FROM … WHERE … GROUP BY … HAVING …`,
//!   inner joins, `COUNT(DISTINCT …)`).
//!
//! ## Quick tour
//!
//! ```
//! use revival_relation::{Schema, Type, Table, Value};
//!
//! let schema = Schema::builder("customer")
//!     .attr("cc", Type::Str)
//!     .attr("zip", Type::Str)
//!     .attr("street", Type::Str)
//!     .build();
//! let mut t = Table::new(schema);
//! t.push(vec!["44".into(), "EH8 9AB".into(), "Crichton St".into()]).unwrap();
//! assert_eq!(t.len(), 1);
//! assert_eq!(t.rows().next().unwrap().1[2], Value::from("Crichton St"));
//! ```

pub mod csv;
pub mod durable;
pub mod error;
pub mod expr;
pub mod groupby;
pub mod index;
pub mod pool;
pub mod schema;
pub mod snapshot;
pub mod sql;
pub mod table;
pub mod value;

pub use error::{Error, Result};
pub use expr::Expr;
pub use groupby::{ColProj, GroupBy, KeyProj};
pub use index::Index;
pub use pool::{Sym, ValuePool};
pub use schema::{AttrId, Attribute, Catalog, Schema, SchemaBuilder, Type};
pub use table::{Table, TupleId};
pub use value::Value;
