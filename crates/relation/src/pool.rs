//! Value interning: dense `u32` symbols for whole-value equality.
//!
//! Every hot path in the stack — detection grouping, repair equivalence
//! classes, TANE partitions, secondary indexes, SQL group-by — compares
//! and hashes *projections* of rows. Hashing a [`Value`] means walking a
//! string; cloning one bumps an `Arc`. A [`ValuePool`] pays that cost
//! once, at load/append time: each distinct value is assigned a dense
//! [`Sym`], and two cells hold equal values iff they hold equal symbols
//! (equality on `Value` is the pool's map key, so NULL == NULL and the
//! NaN-normalising float order are preserved exactly).
//!
//! Symbols are only comparable within the pool that issued them — each
//! [`crate::Table`] owns one, as does each [`crate::Index`] (which is
//! what makes cross-table probes work: foreign values are *looked up*,
//! not assumed). Symbol numeric order is an interning accident and
//! means nothing; consumers that need value order map back through
//! [`ValuePool::value`].

use crate::value::Value;
use std::collections::HashMap;

/// A dense symbol for one interned [`Value`]. `Sym` equality ⇔ value
/// equality (within one [`ValuePool`]); the numeric order is meaningless.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Sym(u32);

impl Sym {
    /// The symbol's index into its pool.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw `u32` (for hashing).
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Rebuild a symbol from its raw index — snapshot decoding only;
    /// the caller owns the "indexes a real pool entry" invariant.
    pub(crate) fn from_raw(raw: u32) -> Sym {
        Sym(raw)
    }
}

/// An append-only intern table of [`Value`]s.
#[derive(Clone, Debug, Default)]
pub struct ValuePool {
    map: HashMap<Value, Sym>,
    vals: Vec<Value>,
}

impl ValuePool {
    /// Empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a value, cloning it only on first occurrence.
    pub fn intern(&mut self, v: &Value) -> Sym {
        if let Some(&s) = self.map.get(v) {
            return s;
        }
        let s = Sym(self.vals.len() as u32);
        self.vals.push(v.clone());
        self.map.insert(v.clone(), s);
        s
    }

    /// The symbol of an already-interned value, if any. The probe side
    /// of cross-pool lookups: a foreign value absent from the pool
    /// cannot equal any interned cell.
    pub fn lookup(&self, v: &Value) -> Option<Sym> {
        self.map.get(v).copied()
    }

    /// The value behind a symbol.
    pub fn value(&self, s: Sym) -> &Value {
        &self.vals[s.index()]
    }

    /// Number of distinct interned values.
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// All interned values in symbol order (`values()[s.index()]` is
    /// `value(s)`) — what the snapshot writer serialises.
    pub fn values(&self) -> &[Value] {
        &self.vals
    }

    /// Rebuild a pool from a value list in symbol order — the snapshot
    /// loader's entry point. Returns `None` if the list holds duplicate
    /// values (which would break symbol-equality ⇔ value-equality).
    pub(crate) fn from_values(vals: Vec<Value>) -> Option<ValuePool> {
        let mut map = HashMap::with_capacity(vals.len());
        for (i, v) in vals.iter().enumerate() {
            if map.insert(v.clone(), Sym(i as u32)).is_some() {
                return None;
            }
        }
        Some(ValuePool { map, vals })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut p = ValuePool::new();
        let a = p.intern(&Value::from("x"));
        let b = p.intern(&Value::from("x"));
        let c = p.intern(&Value::Int(3));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(p.len(), 2);
        assert_eq!(p.value(a), &Value::from("x"));
        assert_eq!(p.value(c), &Value::Int(3));
    }

    #[test]
    fn lookup_does_not_insert() {
        let mut p = ValuePool::new();
        assert!(p.lookup(&Value::Null).is_none());
        let s = p.intern(&Value::Null);
        assert_eq!(p.lookup(&Value::Null), Some(s));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn value_equality_semantics_carry_over() {
        // NaN is self-equal under Value's total order, so it interns to
        // one symbol; Int(2) and Float(2.0) are distinct variants.
        let mut p = ValuePool::new();
        let n1 = p.intern(&Value::Float(f64::NAN));
        let n2 = p.intern(&Value::Float(f64::NAN));
        assert_eq!(n1, n2);
        assert_ne!(p.intern(&Value::Int(2)), p.intern(&Value::Float(2.0)));
    }
}
