//! Crash-durable file writes.
//!
//! `std::fs::write` alone gives no durability guarantee: after a power
//! loss or `kill -9` the file may be missing, empty, or torn even
//! though the call returned `Ok`. Every on-disk artefact that a restart
//! must be able to trust (`.sdq` snapshots, constraint suites, WAL
//! segments) goes through this module instead, which applies the
//! standard recipe:
//!
//! 1. write the full image to a sibling temporary file,
//! 2. `File::sync_all` the temporary (data + metadata reach the disk),
//! 3. `rename` it over the destination (atomic on POSIX filesystems),
//! 4. fsync the parent directory so the rename itself is durable.
//!
//! Readers therefore observe either the old image or the new one —
//! never a prefix of the new one.

use std::fs::File;
use std::io::Write;
use std::path::Path;

use crate::error::{Error, Result};

fn io_err(context: &str, path: &Path, e: std::io::Error) -> Error {
    Error::Io(format!("{context} {}: {e}", path.display()))
}

/// Fsync a directory so that recent entry changes (creations, renames,
/// deletions) inside it survive a crash. On Linux a directory can be
/// opened read-only like a file and `sync_all` flushes its entries; on
/// targets where that is not supported this is a no-op, which merely
/// weakens durability back to the platform default.
pub fn sync_dir(dir: &Path) -> Result<()> {
    #[cfg(unix)]
    {
        let span = fsync_span();
        let d = File::open(dir).map_err(|e| io_err("open dir", dir, e))?;
        d.sync_all().map_err(|e| io_err("sync dir", dir, e))?;
        drop(span);
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
    }
    Ok(())
}

/// Timer for one durable fsync (temp-file `sync_all` or directory sync);
/// feeds the `durable_fsync_us` histogram.
fn fsync_span() -> revival_obs::Span {
    revival_obs::Span::start(revival_obs::global().histogram("durable_fsync_us"))
}

/// Durably replace the file at `path` with `bytes` (write-to-temp,
/// fsync, rename, fsync parent). The temporary lives next to the
/// destination (`<name>.tmp`) so the rename never crosses filesystems.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<()> {
    let mut tmp_name = path
        .file_name()
        .ok_or_else(|| Error::Io(format!("no file name in {}", path.display())))?
        .to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);

    {
        let mut f = File::create(&tmp).map_err(|e| io_err("create", &tmp, e))?;
        f.write_all(bytes).map_err(|e| io_err("write", &tmp, e))?;
        let span = fsync_span();
        f.sync_all().map_err(|e| io_err("sync", &tmp, e))?;
        drop(span);
    }
    std::fs::rename(&tmp, path).map_err(|e| io_err("rename", &tmp, e))?;

    match path.parent() {
        Some(parent) if !parent.as_os_str().is_empty() => sync_dir(parent),
        _ => sync_dir(Path::new(".")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("revival_durable_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_atomic_replaces_and_leaves_no_temp() {
        let dir = tmp_dir("replace");
        let path = dir.join("x.bin");
        write_atomic(&path, b"one").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"one");
        write_atomic(&path, b"two-longer").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"two-longer");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files left behind: {leftovers:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sync_dir_accepts_existing_directory() {
        let dir = tmp_dir("syncdir");
        sync_dir(&dir).unwrap();
        assert!(sync_dir(Path::new("/nonexistent-revival-path")).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
