//! CSV reading and writing (RFC-4180 flavour), hand-rolled.
//!
//! Dataset exchange in the cleaning experiments happens over CSV: the
//! workload generators dump instances, the Semandaq CLI loads them. The
//! subset supported: comma separator, `"`-quoting with `""` escapes,
//! embedded newlines inside quotes, optional trailing newline. Headers
//! are required and must match the schema's attribute names when a schema
//! is provided.

use crate::error::{Error, Result};
use crate::schema::{Attribute, Schema, Type};
use crate::table::Table;
use crate::value::Value;
use std::io::{BufRead, Write};

/// Parse one CSV record from `input` starting at byte `pos`.
/// Returns the fields and the new position, or `None` at end of input.
fn parse_record(input: &str, pos: &mut usize, line: &mut usize) -> Result<Option<Vec<String>>> {
    let bytes = input.as_bytes();
    if *pos >= bytes.len() {
        return Ok(None);
    }
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut i = *pos;
    loop {
        if i >= bytes.len() {
            if in_quotes {
                return Err(Error::Csv {
                    line: *line,
                    message: "unterminated quoted field".into(),
                });
            }
            fields.push(std::mem::take(&mut field));
            *pos = i;
            return Ok(Some(fields));
        }
        let c = bytes[i];
        if in_quotes {
            match c {
                b'"' => {
                    if i + 1 < bytes.len() && bytes[i + 1] == b'"' {
                        field.push('"');
                        i += 2;
                    } else {
                        in_quotes = false;
                        i += 1;
                    }
                }
                b'\n' => {
                    field.push('\n');
                    *line += 1;
                    i += 1;
                }
                _ => {
                    // Push the whole UTF-8 char, not just one byte.
                    let ch_len = utf8_len(c);
                    field.push_str(&input[i..i + ch_len]);
                    i += ch_len;
                }
            }
        } else {
            match c {
                b'"' => {
                    if !field.is_empty() {
                        return Err(Error::Csv {
                            line: *line,
                            message: "quote inside unquoted field".into(),
                        });
                    }
                    in_quotes = true;
                    i += 1;
                }
                b',' => {
                    fields.push(std::mem::take(&mut field));
                    i += 1;
                }
                b'\r' => {
                    if i + 1 < bytes.len() && bytes[i + 1] == b'\n' {
                        i += 2;
                    } else {
                        i += 1;
                    }
                    *line += 1;
                    fields.push(std::mem::take(&mut field));
                    *pos = i;
                    return Ok(Some(fields));
                }
                b'\n' => {
                    i += 1;
                    *line += 1;
                    fields.push(std::mem::take(&mut field));
                    *pos = i;
                    return Ok(Some(fields));
                }
                _ => {
                    let ch_len = utf8_len(c);
                    field.push_str(&input[i..i + ch_len]);
                    i += ch_len;
                }
            }
        }
    }
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

/// Parse a full CSV document into records.
pub fn parse(input: &str) -> Result<Vec<Vec<String>>> {
    let mut pos = 0;
    let mut line = 1;
    let mut out = Vec::new();
    while let Some(rec) = parse_record(input, &mut pos, &mut line)? {
        // Skip completely blank records (e.g. trailing newline).
        if rec.len() == 1 && rec[0].is_empty() {
            continue;
        }
        out.push(rec);
    }
    Ok(out)
}

/// Load a table from CSV text, validating the header against `schema`.
pub fn read_table(schema: &Schema, input: &str) -> Result<Table> {
    let records = parse(input)?;
    let mut it = records.into_iter();
    let header = it.next().ok_or(Error::Csv { line: 1, message: "missing header".into() })?;
    let expected: Vec<&str> = schema.attributes().iter().map(|a| a.name.as_str()).collect();
    if header != expected {
        return Err(Error::Csv {
            line: 1,
            message: format!("header {header:?} does not match schema {expected:?}"),
        });
    }
    let mut table = Table::new(schema.clone());
    for (n, rec) in it.enumerate() {
        if rec.len() != schema.arity() {
            return Err(Error::Csv {
                line: n + 2,
                message: format!("expected {} fields, got {}", schema.arity(), rec.len()),
            });
        }
        let mut row = Vec::with_capacity(rec.len());
        for (attr, raw) in schema.attributes().iter().zip(&rec) {
            let v = attr.ty.parse(raw).map_err(|_| Error::Csv {
                line: n + 2,
                message: format!("cannot parse `{raw}` as {} for `{}`", attr.ty, attr.name),
            })?;
            row.push(v);
        }
        table.push_unchecked(row);
    }
    Ok(table)
}

/// Load a table from CSV inferring a schema: every column is `Str` unless
/// all non-empty values parse as Int (then Int) or Float (then Float).
pub fn read_table_infer(name: &str, input: &str) -> Result<Table> {
    let records = parse(input)?;
    let mut it = records.iter();
    let header = it.next().ok_or(Error::Csv { line: 1, message: "missing header".into() })?;
    let ncols = header.len();
    let mut col_ty = vec![Type::Int; ncols];
    let mut seen_any = vec![false; ncols];
    for rec in records.iter().skip(1) {
        for (c, raw) in rec.iter().enumerate().take(ncols) {
            if raw.is_empty() {
                continue;
            }
            seen_any[c] = true;
            col_ty[c] = match col_ty[c] {
                Type::Int if raw.parse::<i64>().is_ok() => Type::Int,
                Type::Int | Type::Float if raw.parse::<f64>().is_ok() => Type::Float,
                _ => Type::Str,
            };
        }
    }
    for (c, seen) in seen_any.iter().enumerate() {
        if !seen {
            col_ty[c] = Type::Str;
        }
    }
    let attrs = header.iter().zip(&col_ty).map(|(h, &ty)| Attribute::new(h.clone(), ty)).collect();
    let schema = Schema::new(name, attrs);
    read_table(&schema, input)
}

/// Quote a field if needed.
fn write_field(out: &mut String, field: &str) {
    if field.contains(',') || field.contains('"') || field.contains('\n') || field.contains('\r') {
        out.push('"');
        for ch in field.chars() {
            if ch == '"' {
                out.push('"');
            }
            out.push(ch);
        }
        out.push('"');
    } else {
        out.push_str(field);
    }
}

/// Serialize a table to CSV text (header + live rows in id order).
pub fn write_table(table: &Table) -> String {
    let schema = table.schema();
    let mut out = String::new();
    for (i, a) in schema.attributes().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_field(&mut out, &a.name);
    }
    out.push('\n');
    for (_, row) in table.rows() {
        for (i, v) in row.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_field(&mut out, &v.render());
        }
        out.push('\n');
    }
    out
}

/// Read a table from a file path.
pub fn read_table_path(schema: &Schema, path: &std::path::Path) -> Result<Table> {
    let mut text = String::new();
    let file = std::fs::File::open(path)?;
    let mut reader = std::io::BufReader::new(file);
    use std::io::Read;
    reader.read_to_string(&mut text)?;
    read_table(schema, &text)
}

/// Write a table to a file path.
pub fn write_table_path(table: &Table, path: &std::path::Path) -> Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    w.write_all(write_table(table).as_bytes())?;
    w.flush()?;
    Ok(())
}

/// Split one CSV line into raw fields (no newline handling). Quoted
/// lines go through the full record parser; embedded newlines inside
/// quotes are not supported here.
fn split_line(line: &str, lineno: usize) -> Result<Vec<String>> {
    if line.contains('"') {
        let mut pos = 0;
        let mut ln = lineno;
        parse_record(line, &mut pos, &mut ln)?
            .ok_or(Error::Csv { line: lineno, message: "empty record".into() })
    } else {
        Ok(line.split(',').map(str::to_string).collect())
    }
}

/// Parse one data line (no header) against `schema` into a typed row —
/// the unit of work for appended lines of a growing CSV (tail mode and
/// the serve protocol's `append`). `lineno` is only used in errors.
pub fn parse_line(schema: &Schema, line: &str, lineno: usize) -> Result<Vec<Value>> {
    let fields = split_line(line, lineno)?;
    if fields.len() != schema.arity() {
        return Err(Error::Csv {
            line: lineno,
            message: format!("expected {} fields, got {}", schema.arity(), fields.len()),
        });
    }
    let mut row = Vec::with_capacity(fields.len());
    for (attr, raw) in schema.attributes().iter().zip(&fields) {
        row.push(attr.ty.parse(raw).map_err(|_| Error::Csv {
            line: lineno,
            message: format!("bad value `{raw}` for {}", attr.name),
        })?);
    }
    Ok(row)
}

/// Streaming line-oriented load for very large files (schema required).
pub fn read_table_stream(schema: &Schema, reader: impl BufRead) -> Result<Table> {
    let mut table = Table::new(schema.clone());
    let mut first = true;
    for (n, line) in reader.lines().enumerate() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        if first {
            first = false;
            let fields = split_line(&line, n + 1)?;
            let expected: Vec<&str> = schema.attributes().iter().map(|a| a.name.as_str()).collect();
            if fields != expected {
                return Err(Error::Csv { line: 1, message: "header mismatch".into() });
            }
            continue;
        }
        table.push_unchecked(parse_line(schema, &line, n + 1)?);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn schema() -> Schema {
        Schema::builder("r").attr("name", Type::Str).attr("age", Type::Int).build()
    }

    #[test]
    fn simple_roundtrip() {
        let s = schema();
        let input = "name,age\nalice,30\nbob,41\n";
        let t = read_table(&s, input).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(write_table(&t), input);
    }

    #[test]
    fn quoting_roundtrip() {
        let s = schema();
        let mut t = Table::new(s);
        t.push(vec!["has,comma".into(), Value::Int(1)]).unwrap();
        t.push(vec!["has\"quote".into(), Value::Int(2)]).unwrap();
        t.push(vec!["has\nnewline".into(), Value::Int(3)]).unwrap();
        let text = write_table(&t);
        let t2 = read_table(t.schema(), &text).unwrap();
        assert_eq!(t2.len(), 3);
        let rows: Vec<_> = t2.rows().map(|(_, r)| r[0].clone()).collect();
        assert_eq!(rows[0], Value::from("has,comma"));
        assert_eq!(rows[1], Value::from("has\"quote"));
        assert_eq!(rows[2], Value::from("has\nnewline"));
    }

    #[test]
    fn empty_field_is_null() {
        let s = schema();
        let t = read_table(&s, "name,age\nalice,\n").unwrap();
        let (_, row) = t.rows().next().unwrap();
        assert!(row[1].is_null());
    }

    #[test]
    fn header_mismatch_rejected() {
        let s = schema();
        assert!(read_table(&s, "x,y\na,1\n").is_err());
    }

    #[test]
    fn bad_int_rejected() {
        let s = schema();
        let err = read_table(&s, "name,age\nalice,notanint\n").unwrap_err();
        match err {
            Error::Csv { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn arity_mismatch_rejected() {
        let s = schema();
        assert!(read_table(&s, "name,age\nalice\n").is_err());
    }

    #[test]
    fn crlf_handled() {
        let s = schema();
        let t = read_table(&s, "name,age\r\nalice,30\r\n").unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn infer_types() {
        let t = read_table_infer("r", "a,b,c\n1,1.5,xyz\n2,2.5,abc\n").unwrap();
        let s = t.schema();
        assert_eq!(s.attribute(0).ty, Type::Int);
        assert_eq!(s.attribute(1).ty, Type::Float);
        assert_eq!(s.attribute(2).ty, Type::Str);
    }

    #[test]
    fn infer_all_empty_column_is_str() {
        let t = read_table_infer("r", "a,b\n1,\n2,\n").unwrap();
        assert_eq!(t.schema().attribute(1).ty, Type::Str);
    }

    #[test]
    fn parse_line_types_and_errors() {
        let s = schema();
        assert_eq!(parse_line(&s, "alice,30", 5).unwrap(), vec!["alice".into(), Value::Int(30)]);
        assert_eq!(parse_line(&s, "\"a,b\",1", 5).unwrap()[0], Value::from("a,b"));
        let err = parse_line(&s, "alice,nope", 5).unwrap_err();
        assert!(err.to_string().contains('5'), "{err}");
        assert!(parse_line(&s, "alice", 5).is_err());
    }

    #[test]
    fn stream_mode() {
        let s = schema();
        let data = "name,age\nalice,30\nbob,41\n";
        let t = read_table_stream(&s, data.as_bytes()).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn unterminated_quote_is_error() {
        assert!(parse("a,\"unterminated\n").is_err());
    }

    #[test]
    fn unicode_fields() {
        let s = schema();
        let t = read_table(&s, "name,age\nmüller,30\n").unwrap();
        let (_, row) = t.rows().next().unwrap();
        assert_eq!(row[0], Value::from("müller"));
    }
}
