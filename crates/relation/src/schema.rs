//! Schemas, attributes and catalogs.
//!
//! Attribute *finite domains* deserve a note: the CFD satisfiability and
//! implication analyses of Fan et al. (TODS 2008) are sensitive to whether
//! attributes range over an infinite domain (strings, integers) or a
//! finite one (e.g. `cc ∈ {01, 44}`, booleans). [`Attribute::finite_domain`]
//! carries that information from schema definition down into
//! `revival-constraints`' static analyses.

use crate::error::{Error, Result};
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Index of an attribute within its schema (0-based position).
pub type AttrId = usize;

/// The declared type of an attribute.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Type {
    Bool,
    Int,
    Float,
    Str,
}

impl Type {
    /// Does `v` inhabit this type? NULL inhabits every type.
    pub fn admits(&self, v: &Value) -> bool {
        matches!(
            (self, v),
            (_, Value::Null)
                | (Type::Bool, Value::Bool(_))
                | (Type::Int, Value::Int(_))
                | (Type::Float, Value::Float(_))
                | (Type::Float, Value::Int(_))
                | (Type::Str, Value::Str(_))
        )
    }

    /// Parse a raw CSV field into this type. Empty string → NULL.
    pub fn parse(&self, raw: &str) -> Result<Value> {
        if raw.is_empty() {
            return Ok(Value::Null);
        }
        match self {
            Type::Bool => match raw {
                "true" | "TRUE" | "1" | "t" => Ok(Value::Bool(true)),
                "false" | "FALSE" | "0" | "f" => Ok(Value::Bool(false)),
                _ => Err(Error::TypeMismatch {
                    attribute: String::new(),
                    expected: "bool".into(),
                    got: raw.into(),
                }),
            },
            Type::Int => raw.parse::<i64>().map(Value::Int).map_err(|_| Error::TypeMismatch {
                attribute: String::new(),
                expected: "int".into(),
                got: raw.into(),
            }),
            Type::Float => raw.parse::<f64>().map(Value::Float).map_err(|_| Error::TypeMismatch {
                attribute: String::new(),
                expected: "float".into(),
                got: raw.into(),
            }),
            Type::Str => Ok(Value::str(raw)),
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Bool => write!(f, "bool"),
            Type::Int => write!(f, "int"),
            Type::Float => write!(f, "float"),
            Type::Str => write!(f, "str"),
        }
    }
}

/// One attribute (column) of a relation schema.
#[derive(Clone, Debug, PartialEq)]
pub struct Attribute {
    /// Attribute name, unique within its schema.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// If `Some`, the attribute ranges over exactly these values.
    ///
    /// Used by CFD satisfiability (finite domains make the problem
    /// NP-complete) and by the workload generators.
    pub finite_domain: Option<Vec<Value>>,
}

impl Attribute {
    /// A plain attribute with an infinite domain.
    pub fn new(name: impl Into<String>, ty: Type) -> Self {
        Attribute { name: name.into(), ty, finite_domain: None }
    }

    /// An attribute constrained to a finite set of values.
    pub fn with_domain(name: impl Into<String>, ty: Type, domain: Vec<Value>) -> Self {
        Attribute { name: name.into(), ty, finite_domain: Some(domain) }
    }

    /// True if this attribute has a declared finite domain.
    pub fn is_finite(&self) -> bool {
        self.finite_domain.is_some()
    }
}

/// The schema of a single relation: a name plus an ordered attribute list.
///
/// `Schema` is cheaply cloneable (`Arc` inside) because tables, constraint
/// sets, detectors and repairs all hold references to it.
#[derive(Clone, Debug, PartialEq)]
pub struct Schema {
    inner: Arc<SchemaInner>,
}

#[derive(Debug, PartialEq)]
struct SchemaInner {
    name: String,
    attrs: Vec<Attribute>,
    by_name: HashMap<String, AttrId>,
}

impl Schema {
    /// Build a schema from a name and attribute list.
    ///
    /// # Panics
    /// Panics if two attributes share a name — that is a programming
    /// error, not a data error.
    pub fn new(name: impl Into<String>, attrs: Vec<Attribute>) -> Self {
        let name = name.into();
        let mut by_name = HashMap::with_capacity(attrs.len());
        for (i, a) in attrs.iter().enumerate() {
            let prev = by_name.insert(a.name.clone(), i);
            assert!(prev.is_none(), "duplicate attribute `{}` in schema `{}`", a.name, name);
        }
        Schema { inner: Arc::new(SchemaInner { name, attrs, by_name }) }
    }

    /// Start a fluent builder.
    pub fn builder(name: impl Into<String>) -> SchemaBuilder {
        SchemaBuilder { name: name.into(), attrs: Vec::new() }
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.inner.attrs.len()
    }

    /// All attributes, in declaration order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.inner.attrs
    }

    /// The attribute at `id`.
    pub fn attribute(&self, id: AttrId) -> &Attribute {
        &self.inner.attrs[id]
    }

    /// Resolve an attribute name to its position.
    pub fn attr_id(&self, name: &str) -> Result<AttrId> {
        self.inner.by_name.get(name).copied().ok_or_else(|| Error::UnknownAttribute {
            relation: self.inner.name.clone(),
            attribute: name.into(),
        })
    }

    /// Resolve several attribute names at once.
    pub fn attr_ids(&self, names: &[&str]) -> Result<Vec<AttrId>> {
        names.iter().map(|n| self.attr_id(n)).collect()
    }

    /// Attribute name at position `id`.
    pub fn attr_name(&self, id: AttrId) -> &str {
        &self.inner.attrs[id].name
    }

    /// Validate a row against this schema (arity + types).
    pub fn check_row(&self, row: &[Value]) -> Result<()> {
        if row.len() != self.arity() {
            return Err(Error::ArityMismatch { expected: self.arity(), got: row.len() });
        }
        for (a, v) in self.inner.attrs.iter().zip(row) {
            if !a.ty.admits(v) {
                return Err(Error::TypeMismatch {
                    attribute: a.name.clone(),
                    expected: a.ty.to_string(),
                    got: v.to_string(),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name())?;
        for (i, a) in self.attributes().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", a.name, a.ty)?;
        }
        write!(f, ")")
    }
}

/// Fluent builder for [`Schema`].
pub struct SchemaBuilder {
    name: String,
    attrs: Vec<Attribute>,
}

impl SchemaBuilder {
    /// Add a plain attribute.
    pub fn attr(mut self, name: impl Into<String>, ty: Type) -> Self {
        self.attrs.push(Attribute::new(name, ty));
        self
    }

    /// Add an attribute with a finite domain.
    pub fn attr_in(mut self, name: impl Into<String>, ty: Type, domain: Vec<Value>) -> Self {
        self.attrs.push(Attribute::with_domain(name, ty, domain));
        self
    }

    /// Finish.
    pub fn build(self) -> Schema {
        Schema::new(self.name, self.attrs)
    }
}

/// A set of named relations — what the SQL engine queries against.
#[derive(Default)]
pub struct Catalog {
    tables: HashMap<String, crate::table::Table>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a table under its schema name.
    pub fn register(&mut self, table: crate::table::Table) {
        self.tables.insert(table.schema().name().to_string(), table);
    }

    /// Look up a table by relation name.
    pub fn get(&self, name: &str) -> Result<&crate::table::Table> {
        self.tables.get(name).ok_or_else(|| Error::UnknownRelation(name.into()))
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, name: &str) -> Result<&mut crate::table::Table> {
        self.tables.get_mut(name).ok_or_else(|| Error::UnknownRelation(name.into()))
    }

    /// Remove a table, returning it.
    pub fn remove(&mut self, name: &str) -> Option<crate::table::Table> {
        self.tables.remove(name)
    }

    /// Names of all registered relations (unordered).
    pub fn relation_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True if no relations are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn customer() -> Schema {
        Schema::builder("customer")
            .attr_in("cc", Type::Str, vec!["01".into(), "44".into()])
            .attr("ac", Type::Str)
            .attr("phn", Type::Str)
            .attr("street", Type::Str)
            .attr("city", Type::Str)
            .attr("zip", Type::Str)
            .build()
    }

    #[test]
    fn builder_and_lookup() {
        let s = customer();
        assert_eq!(s.name(), "customer");
        assert_eq!(s.arity(), 6);
        assert_eq!(s.attr_id("zip").unwrap(), 5);
        assert_eq!(s.attr_name(0), "cc");
        assert!(s.attr_id("nope").is_err());
    }

    #[test]
    fn finite_domain_flag() {
        let s = customer();
        assert!(s.attribute(0).is_finite());
        assert!(!s.attribute(1).is_finite());
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn duplicate_attr_panics() {
        Schema::builder("r").attr("a", Type::Int).attr("a", Type::Int).build();
    }

    #[test]
    fn check_row_arity_and_types() {
        let s = Schema::builder("r").attr("a", Type::Int).attr("b", Type::Str).build();
        assert!(s.check_row(&[Value::Int(1), Value::from("x")]).is_ok());
        assert!(s.check_row(&[Value::Int(1)]).is_err());
        assert!(s.check_row(&[Value::from("x"), Value::from("y")]).is_err());
        // NULL admits everywhere.
        assert!(s.check_row(&[Value::Null, Value::Null]).is_ok());
    }

    #[test]
    fn float_admits_int() {
        let s = Schema::builder("r").attr("x", Type::Float).build();
        assert!(s.check_row(&[Value::Int(3)]).is_ok());
    }

    #[test]
    fn type_parse() {
        assert_eq!(Type::Int.parse("42").unwrap(), Value::Int(42));
        assert_eq!(Type::Float.parse("1.5").unwrap(), Value::Float(1.5));
        assert_eq!(Type::Str.parse("hi").unwrap(), Value::from("hi"));
        assert_eq!(Type::Bool.parse("true").unwrap(), Value::Bool(true));
        assert_eq!(Type::Int.parse("").unwrap(), Value::Null);
        assert!(Type::Int.parse("x").is_err());
    }

    #[test]
    fn catalog_register_get() {
        let mut c = Catalog::new();
        let t = crate::table::Table::new(customer());
        c.register(t);
        assert!(c.get("customer").is_ok());
        assert!(c.get("nope").is_err());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn schema_display() {
        let s = Schema::builder("r").attr("a", Type::Int).attr("b", Type::Str).build();
        assert_eq!(s.to_string(), "r(a: int, b: str)");
    }
}
