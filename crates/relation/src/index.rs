//! Secondary hash indexes over attribute sets.
//!
//! Detection (the `revival-detect` crate) and repair build many transient indexes
//! on (subsets of) a CFD's left-hand side; matching builds block indexes.
//! The index maps a projected key (values of a fixed attribute list) to
//! the set of tuple ids carrying that key.
//!
//! Built on the interned [`GroupBy`] kernel: the index owns a
//! [`ValuePool`], keys are stored as symbol tuples, and every probe —
//! [`Index::lookup`], [`Index::lookup_row`], [`Index::insert`],
//! [`Index::remove`] — hashes the projection in place instead of
//! allocating a `Vec<Value>`. Foreign probe values (SQL result rows,
//! CIND source tuples) resolve through [`ValuePool::lookup`]: a value
//! the index never saw cannot match any key, so the probe returns empty
//! without hashing a single string twice.

use crate::groupby::{hash_syms, GroupBy};
use crate::pool::{Sym, ValuePool};
use crate::table::{Table, TupleId};
use crate::value::Value;

/// A hash index on a fixed list of attribute positions of one table.
#[derive(Clone, Debug)]
pub struct Index {
    attrs: Vec<usize>,
    pool: ValuePool,
    map: GroupBy<Box<[Sym]>, Vec<TupleId>>,
    /// Groups with ≥ 1 live id. Removal empties a group's id list in
    /// place (the kernel is append-only); this tracks the logical count.
    non_empty: usize,
}

impl Index {
    /// Build an index over `attrs` of `table` by scanning its symbol
    /// columns directly: each *distinct* table symbol resolves to an
    /// index symbol exactly once (one memo slot per pool entry), so no
    /// row is materialised and no string is hashed per occurrence.
    pub fn build(table: &Table, attrs: &[usize]) -> Self {
        let mut ix = Index {
            attrs: attrs.to_vec(),
            pool: ValuePool::new(),
            map: GroupBy::new(),
            non_empty: 0,
        };
        let proj = table.proj(attrs);
        let mut memo: Vec<Option<Sym>> = vec![None; table.pool().len()];
        for slot in table.live_slots() {
            let syms: Vec<Sym> = (0..attrs.len())
                .map(|i| {
                    let ts = proj.sym_at(i, slot);
                    match memo[ts.index()] {
                        Some(s) => s,
                        None => {
                            let s = ix.pool.intern(table.pool().value(ts));
                            memo[ts.index()] = Some(s);
                            s
                        }
                    }
                })
                .collect();
            ix.insert_syms(TupleId(slot as u64), syms);
        }
        ix
    }

    /// The indexed attribute positions.
    pub fn attrs(&self) -> &[usize] {
        &self.attrs
    }

    /// Resolve a full projection to symbols (probe side: no interning).
    /// `None` ⇔ some value was never indexed ⇔ no tuple matches.
    fn probe_syms<'v>(
        &self,
        vals: impl Iterator<Item = &'v Value> + Clone,
    ) -> Option<(u64, Vec<Sym>)> {
        let syms: Option<Vec<Sym>> = vals.map(|v| self.pool.lookup(v)).collect();
        syms.map(|s| (hash_syms(s.iter().copied()), s))
    }

    fn lookup_syms(&self, hash: u64, syms: &[Sym]) -> &[TupleId] {
        self.map.get(hash, |k| k.as_ref() == syms).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Tuples whose projection equals `key` (one value per indexed
    /// attribute, in index order).
    pub fn lookup(&self, key: &[Value]) -> &[TupleId] {
        if key.len() != self.attrs.len() {
            return &[];
        }
        match self.probe_syms(key.iter()) {
            Some((h, syms)) => self.lookup_syms(h, &syms),
            None => &[],
        }
    }

    /// Look up using a full row (projects it internally, no allocation
    /// of a key vector of values).
    pub fn lookup_row(&self, row: &[Value]) -> &[TupleId] {
        match self.probe_syms(self.attrs.iter().map(|&a| &row[a])) {
            Some((h, syms)) => self.lookup_syms(h, &syms),
            None => &[],
        }
    }

    /// Look up projecting `row` through a caller-supplied attribute
    /// list positionally aligned with the *indexed* attributes — the
    /// cross-relation probe CIND detection uses (`row[attrs[i]]` must
    /// match indexed attribute `i`).
    pub fn lookup_mapped(&self, row: &[Value], attrs: &[usize]) -> &[TupleId] {
        if attrs.len() != self.attrs.len() {
            return &[];
        }
        match self.probe_syms(attrs.iter().map(|&a| &row[a])) {
            Some((h, syms)) => self.lookup_syms(h, &syms),
            None => &[],
        }
    }

    /// Iterate over `(key values, ids)` groups with ≥ 1 live id.
    pub fn groups(&self) -> impl Iterator<Item = (Vec<Value>, &Vec<TupleId>)> {
        self.map
            .iter()
            .filter(|(_, ids)| !ids.is_empty())
            .map(|(k, ids)| (k.iter().map(|&s| self.pool.value(s).clone()).collect(), ids))
    }

    /// Number of distinct keys with ≥ 1 live id.
    pub fn distinct_keys(&self) -> usize {
        self.non_empty
    }

    /// Register an inserted tuple (caller provides its row). The
    /// projection interns into the index's pool; the owned key is built
    /// only for a first-seen projection.
    pub fn insert(&mut self, id: TupleId, row: &[Value]) {
        let syms: Vec<Sym> = self.attrs.iter().map(|&a| self.pool.intern(&row[a])).collect();
        self.insert_syms(id, syms);
    }

    fn insert_syms(&mut self, id: TupleId, syms: Vec<Sym>) {
        let hash = hash_syms(syms.iter().copied());
        let idx = match self.map.probe(hash, |k| k.as_ref() == syms) {
            Some(i) => i,
            None => self.map.insert_unique(hash, syms.into_boxed_slice(), Vec::new()),
        };
        let ids = self.map.value_at_mut(idx);
        if ids.is_empty() {
            self.non_empty += 1;
        }
        ids.push(id);
    }

    /// Unregister a deleted tuple (caller provides its former row).
    pub fn remove(&mut self, id: TupleId, row: &[Value]) {
        let Some((hash, syms)) = self.probe_syms(self.attrs.iter().map(|&a| &row[a])) else {
            return;
        };
        if let Some(i) = self.map.probe(hash, |k| k.as_ref() == syms) {
            let ids = self.map.value_at_mut(i);
            // The kernel is append-only, so an emptied group stays
            // allocated: decrement only on the non-empty → empty
            // transition, or a repeated remove would underflow.
            let was_live = !ids.is_empty();
            ids.retain(|&x| x != id);
            if was_live && ids.is_empty() {
                self.non_empty -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Schema, Type};

    fn table() -> Table {
        let s = Schema::builder("r").attr("a", Type::Str).attr("b", Type::Int).build();
        let mut t = Table::new(s);
        t.push(vec!["x".into(), Value::Int(1)]).unwrap();
        t.push(vec!["x".into(), Value::Int(2)]).unwrap();
        t.push(vec!["y".into(), Value::Int(3)]).unwrap();
        t
    }

    #[test]
    fn build_and_lookup() {
        let t = table();
        let ix = Index::build(&t, &[0]);
        assert_eq!(ix.lookup(&["x".into()]).len(), 2);
        assert_eq!(ix.lookup(&["y".into()]).len(), 1);
        assert_eq!(ix.lookup(&["z".into()]).len(), 0);
        assert_eq!(ix.distinct_keys(), 2);
    }

    #[test]
    fn composite_key() {
        let t = table();
        let ix = Index::build(&t, &[0, 1]);
        assert_eq!(ix.lookup(&["x".into(), Value::Int(1)]).len(), 1);
        assert_eq!(ix.distinct_keys(), 3);
        // Wrong-arity probes are empty, not panics.
        assert!(ix.lookup(&["x".into()]).is_empty());
    }

    #[test]
    fn maintain_under_insert_delete() {
        let mut t = table();
        let mut ix = Index::build(&t, &[0]);
        let id = t.push(vec!["y".into(), Value::Int(9)]).unwrap();
        ix.insert(id, &t.get(id).unwrap());
        assert_eq!(ix.lookup(&["y".into()]).len(), 2);
        let row = t.delete(id).unwrap();
        ix.remove(id, &row);
        assert_eq!(ix.lookup(&["y".into()]).len(), 1);
    }

    #[test]
    fn lookup_row_projects() {
        let t = table();
        let ix = Index::build(&t, &[0]);
        let hits = ix.lookup_row(&["x".into(), Value::Int(42)]);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn lookup_mapped_probes_foreign_rows() {
        let t = table();
        let ix = Index::build(&t, &[0]);
        // A foreign row whose attribute 2 plays the role of indexed
        // attribute 0.
        let foreign = vec![Value::Int(0), Value::Int(0), Value::from("x")];
        assert_eq!(ix.lookup_mapped(&foreign, &[2]).len(), 2);
        assert!(ix.lookup_mapped(&foreign, &[0]).is_empty());
        assert!(ix.lookup_mapped(&foreign, &[0, 2]).is_empty());
    }

    #[test]
    fn remove_last_id_drops_key() {
        let mut t = Table::new(Schema::builder("r").attr("a", Type::Str).build());
        let id = t.push(vec!["q".into()]).unwrap();
        let mut ix = Index::build(&t, &[0]);
        let row = t.delete(id).unwrap();
        ix.remove(id, &row);
        assert_eq!(ix.distinct_keys(), 0);
        // Re-inserting the same key revives the group.
        ix.insert(id, &["q".into()]);
        assert_eq!(ix.distinct_keys(), 1);
    }

    #[test]
    fn repeated_remove_is_a_noop() {
        let mut t = Table::new(Schema::builder("r").attr("a", Type::Str).build());
        let id = t.push(vec!["q".into()]).unwrap();
        let mut ix = Index::build(&t, &[0]);
        let row = t.delete(id).unwrap();
        ix.remove(id, &row);
        // Removing from an already-emptied group must not skew (or in
        // debug builds, underflow) the distinct-key count.
        ix.remove(id, &row);
        assert_eq!(ix.distinct_keys(), 0);
        // Nor may removing an absent id from a live group decrement it.
        let keep = t.push(vec!["q".into()]).unwrap();
        ix.insert(keep, &["q".into()]);
        ix.remove(TupleId(999), &["q".into()]);
        assert_eq!(ix.distinct_keys(), 1);
    }

    #[test]
    fn groups_skip_emptied_keys() {
        let mut t = table();
        let mut ix = Index::build(&t, &[0]);
        let row = t.delete(TupleId(2)).unwrap();
        ix.remove(TupleId(2), &row);
        let keys: Vec<Vec<Value>> = ix.groups().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![vec![Value::from("x")]]);
    }
}
