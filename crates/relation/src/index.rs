//! Secondary hash indexes over attribute sets.
//!
//! Detection (the `revival-detect` crate) and repair build many transient indexes
//! on (subsets of) a CFD's left-hand side; matching builds block indexes.
//! The index maps a projected key (values of a fixed attribute list) to
//! the set of tuple ids carrying that key.

use crate::table::{Table, TupleId};
use crate::value::Value;
use std::collections::HashMap;

/// A hash index on a fixed list of attribute positions of one table.
#[derive(Debug, Clone)]
pub struct Index {
    attrs: Vec<usize>,
    map: HashMap<Vec<Value>, Vec<TupleId>>,
}

impl Index {
    /// Build an index over `attrs` of `table`, scanning all live rows.
    pub fn build(table: &Table, attrs: &[usize]) -> Self {
        let mut map: HashMap<Vec<Value>, Vec<TupleId>> = HashMap::new();
        for (id, row) in table.rows() {
            let key: Vec<Value> = attrs.iter().map(|&a| row[a].clone()).collect();
            map.entry(key).or_default().push(id);
        }
        Index { attrs: attrs.to_vec(), map }
    }

    /// The indexed attribute positions.
    pub fn attrs(&self) -> &[usize] {
        &self.attrs
    }

    /// Tuples whose projection equals `key`.
    pub fn lookup(&self, key: &[Value]) -> &[TupleId] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Look up using a full row (projects it internally).
    pub fn lookup_row(&self, row: &[Value]) -> &[TupleId] {
        let key: Vec<Value> = self.attrs.iter().map(|&a| row[a].clone()).collect();
        self.map.get(&key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterate over `(key, ids)` groups.
    pub fn groups(&self) -> impl Iterator<Item = (&Vec<Value>, &Vec<TupleId>)> {
        self.map.iter()
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Register an inserted tuple (caller provides its row).
    pub fn insert(&mut self, id: TupleId, row: &[Value]) {
        let key: Vec<Value> = self.attrs.iter().map(|&a| row[a].clone()).collect();
        self.map.entry(key).or_default().push(id);
    }

    /// Unregister a deleted tuple (caller provides its former row).
    pub fn remove(&mut self, id: TupleId, row: &[Value]) {
        let key: Vec<Value> = self.attrs.iter().map(|&a| row[a].clone()).collect();
        if let Some(ids) = self.map.get_mut(&key) {
            ids.retain(|&x| x != id);
            if ids.is_empty() {
                self.map.remove(&key);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Schema, Type};

    fn table() -> Table {
        let s = Schema::builder("r").attr("a", Type::Str).attr("b", Type::Int).build();
        let mut t = Table::new(s);
        t.push(vec!["x".into(), Value::Int(1)]).unwrap();
        t.push(vec!["x".into(), Value::Int(2)]).unwrap();
        t.push(vec!["y".into(), Value::Int(3)]).unwrap();
        t
    }

    #[test]
    fn build_and_lookup() {
        let t = table();
        let ix = Index::build(&t, &[0]);
        assert_eq!(ix.lookup(&["x".into()]).len(), 2);
        assert_eq!(ix.lookup(&["y".into()]).len(), 1);
        assert_eq!(ix.lookup(&["z".into()]).len(), 0);
        assert_eq!(ix.distinct_keys(), 2);
    }

    #[test]
    fn composite_key() {
        let t = table();
        let ix = Index::build(&t, &[0, 1]);
        assert_eq!(ix.lookup(&["x".into(), Value::Int(1)]).len(), 1);
        assert_eq!(ix.distinct_keys(), 3);
    }

    #[test]
    fn maintain_under_insert_delete() {
        let mut t = table();
        let mut ix = Index::build(&t, &[0]);
        let id = t.push(vec!["y".into(), Value::Int(9)]).unwrap();
        ix.insert(id, t.get(id).unwrap());
        assert_eq!(ix.lookup(&["y".into()]).len(), 2);
        let row = t.delete(id).unwrap();
        ix.remove(id, &row);
        assert_eq!(ix.lookup(&["y".into()]).len(), 1);
    }

    #[test]
    fn lookup_row_projects() {
        let t = table();
        let ix = Index::build(&t, &[0]);
        let hits = ix.lookup_row(&["x".into(), Value::Int(42)]);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn remove_last_id_drops_key() {
        let mut t = Table::new(Schema::builder("r").attr("a", Type::Str).build());
        let id = t.push(vec!["q".into()]).unwrap();
        let mut ix = Index::build(&t, &[0]);
        let row = t.delete(id).unwrap();
        ix.remove(id, &row);
        assert_eq!(ix.distinct_keys(), 0);
    }
}
