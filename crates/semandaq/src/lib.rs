//! Library backing the `semandaq` CLI — the workflow of the Semandaq
//! prototype (\[9\], demo'd at VLDB 2008): load data + CFDs, detect
//! violations (SQL-based or native), compute a candidate repair, let the
//! user inspect and apply manual changes, and see how those changes
//! affect the repair.
//!
//! The CLI surface lives in `main.rs`; everything testable is here.

use revival_constraints::analysis::{self, Outcome};
use revival_constraints::parser::parse_cfds;
use revival_constraints::Cfd;
use revival_detect::native::describe_violation;
use revival_detect::{engine_by_name, DetectJob, Detector, ViolationReport};
use revival_relation::{csv, Error, Result, Table, Value};
use revival_repair::{BatchRepair, CostModel, RepairStats};

/// One line of repair stats, shared by the plain and profiled paths so
/// `--explain` cannot drift from the unprofiled summary.
fn repair_summary(stats: &RepairStats, jobs: usize) -> String {
    format!(
        "passes={} cells_changed={} forced={} cost={:.3} residual={} jobs={}",
        stats.passes,
        stats.cells_changed,
        stats.forced_resolutions,
        stats.cost,
        stats.residual_violations,
        jobs
    )
}

/// Which detection engine to use. All variants dispatch through the
/// shared [`Detector`] trait and agree on the reported violations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    /// Hash-based detection in process (the sequential reference).
    Native,
    /// The two-query SQL encoding on the bundled SQL engine.
    Sql,
    /// Batch replay through the incremental maintenance engine.
    Incremental,
    /// Sharded threads; byte-identical reports to [`Engine::Native`].
    Parallel,
}

impl Engine {
    /// The CLI spelling, as `engine_by_name` accepts it.
    pub fn as_str(&self) -> &'static str {
        match self {
            Engine::Native => "native",
            Engine::Sql => "sql",
            Engine::Incremental => "incremental",
            Engine::Parallel => "parallel",
        }
    }

    /// Instantiate the engine; `jobs` only affects [`Engine::Parallel`]
    /// (0 = one shard per available core).
    pub fn detector(&self, jobs: usize) -> Box<dyn Detector> {
        engine_by_name(self.as_str(), jobs).expect("all Engine variants resolve")
    }
}

impl std::str::FromStr for Engine {
    type Err = Error;
    fn from_str(s: &str) -> Result<Engine> {
        match s {
            "native" => Ok(Engine::Native),
            "sql" => Ok(Engine::Sql),
            "incremental" => Ok(Engine::Incremental),
            "parallel" => Ok(Engine::Parallel),
            other => Err(Error::Io(format!(
                "unknown engine `{other}` (native|sql|incremental|parallel)"
            ))),
        }
    }
}

/// A loaded session: one table plus its CFD suite.
pub struct Session {
    pub table: Table,
    pub cfds: Vec<Cfd>,
}

impl Session {
    /// Load a session from CSV text and CFD text. The schema is
    /// inferred from the CSV; `table_name` must match the relation the
    /// CFDs constrain.
    pub fn load(table_name: &str, csv_text: &str, cfd_text: &str) -> Result<Session> {
        let table = csv::read_table_infer(table_name, csv_text)?;
        Session::from_table(table, cfd_text)
    }

    /// Build a session from an already-loaded table (e.g. a `.sdq`
    /// snapshot) plus CFD text parsed against its schema.
    pub fn from_table(table: Table, cfd_text: &str) -> Result<Session> {
        let cfds = parse_cfds(cfd_text, table.schema())?;
        Ok(Session { table, cfds })
    }

    /// Detect violations with the chosen engine.
    pub fn detect(&self, engine: Engine) -> Result<ViolationReport> {
        self.detect_jobs(engine, 0)
    }

    /// Detect violations with the chosen engine and shard count
    /// (`jobs` only affects [`Engine::Parallel`]; 0 = auto).
    pub fn detect_jobs(&self, engine: Engine, jobs: usize) -> Result<ViolationReport> {
        self.detect_opts(engine, jobs, false)
    }

    /// Detect with full options: engine, shard count, and merged-tableau
    /// execution (`merged` makes the engine scan the suite merged by
    /// embedded FD; violation indices still refer to [`Session::cfds`]).
    pub fn detect_opts(
        &self,
        engine: Engine,
        jobs: usize,
        merged: bool,
    ) -> Result<ViolationReport> {
        let job = DetectJob::on_table(&self.table, &self.cfds).merged(merged);
        engine.detector(jobs).run(&job)
    }

    /// [`Session::detect_opts`] through the profiled path: same report,
    /// byte for byte, plus the per-constraint [`revival_obs::JobProfile`]
    /// behind `semandaq detect --explain`.
    pub fn detect_explain(
        &self,
        engine: Engine,
        jobs: usize,
        merged: bool,
    ) -> Result<(ViolationReport, revival_obs::JobProfile)> {
        let job = DetectJob::on_table(&self.table, &self.cfds).merged(merged);
        engine.detector(jobs).run_profiled(&job)
    }

    /// Human-readable violation listing (capped).
    pub fn describe(&self, report: &ViolationReport, max: usize) -> String {
        let mut out = format!(
            "{} violation(s); {} tuple(s) involved\n",
            report.len(),
            report.violating_tuples().len()
        );
        for v in report.violations.iter().take(max) {
            out.push_str("  ");
            out.push_str(&describe_violation(v, &self.cfds, self.table.schema()));
            out.push('\n');
        }
        if report.len() > max {
            out.push_str(&format!("  … and {} more\n", report.len() - max));
        }
        out
    }

    /// Compute a candidate repair; returns (repaired table, summary).
    pub fn repair(&self) -> Result<(Table, String)> {
        self.repair_jobs(1)
    }

    /// Compute a candidate repair with `jobs` shards (0 = one per
    /// available core). The repaired table and stats are byte-identical
    /// at any shard count; only wall time changes.
    pub fn repair_jobs(&self, jobs: usize) -> Result<(Table, String)> {
        let repairer =
            BatchRepair::new(&self.cfds, CostModel::uniform(self.table.schema().arity()))
                .with_jobs(jobs);
        let (fixed, stats) = repairer.repair(&self.table)?;
        Ok((fixed, repair_summary(&stats, jobs)))
    }

    /// [`Session::repair_jobs`] through the profiled path: identical
    /// repaired table and stats, plus the per-phase/per-constraint
    /// [`revival_obs::JobProfile`] behind `semandaq repair --explain`.
    pub fn repair_jobs_explain(
        &self,
        jobs: usize,
    ) -> Result<(Table, String, revival_obs::JobProfile)> {
        let repairer =
            BatchRepair::new(&self.cfds, CostModel::uniform(self.table.schema().arity()))
                .with_jobs(jobs);
        let (fixed, stats, profile) = repairer.repair_profiled(&self.table)?;
        Ok((fixed, repair_summary(&stats, jobs), profile))
    }

    /// Apply a manual edit `tid:attr=value` (the "user inspects and
    /// modifies the repair" workflow of the demo).
    pub fn apply_edit(&mut self, spec: &str) -> Result<()> {
        let (tid_part, rest) = spec
            .split_once(':')
            .ok_or_else(|| Error::Io(format!("bad edit `{spec}`: want tid:attr=value")))?;
        let (attr_part, value_part) = rest
            .split_once('=')
            .ok_or_else(|| Error::Io(format!("bad edit `{spec}`: want tid:attr=value")))?;
        let tid: u64 = tid_part
            .trim_start_matches('t')
            .parse()
            .map_err(|_| Error::Io(format!("bad tuple id `{tid_part}`")))?;
        let attr = self.table.schema().attr_id(attr_part)?;
        let ty = self.table.schema().attribute(attr).ty;
        let value: Value = ty.parse(value_part)?;
        self.table.set_cell(revival_relation::TupleId(tid), attr, value)
    }

    /// Run the static analyses over the suite.
    pub fn analyze(&self, budget: usize) -> String {
        let schema = self.table.schema();
        let sat = analysis::is_satisfiable(schema, &self.cfds, budget);
        let (cover, report) = analysis::minimal_cover(schema, &self.cfds, budget);
        let mut out = String::new();
        out.push_str(&format!(
            "satisfiable: {}\n",
            match sat {
                Outcome::Yes => "yes",
                Outcome::No => "NO — suite admits no non-empty instance",
                Outcome::ResourceLimit => "unknown (budget exhausted)",
            }
        ));
        out.push_str(&format!(
            "minimal cover: {} -> {} tableau rows ({} implied, {} subsumed)\n",
            report.rows_in, report.rows_out, report.implied_dropped, report.subsumed_dropped
        ));
        for cfd in &cover {
            // Multi-row (merged) CFDs display one constraint line per
            // tableau row; keep every line indented.
            for line in cfd.display(schema).to_string().lines() {
                out.push_str(&format!("  {line}\n"));
            }
        }
        out
    }
}

/// Load a table from a data file, dispatching on the extension: `.sdq`
/// opens a columnar snapshot (memory-mapped where the platform allows;
/// the snapshot's embedded relation name wins over `name`), anything
/// else parses as CSV with the schema inferred and the relation named
/// `name`. Every `--data` flag of the CLI accepts both formats through
/// this helper.
pub fn load_table(name: &str, path: &str) -> Result<Table> {
    if std::path::Path::new(path).extension().is_some_and(|x| x == "sdq") {
        Table::open_snapshot(std::path::Path::new(path))
    } else {
        let text = std::fs::read_to_string(path).map_err(|e| Error::Io(format!("{path}: {e}")))?;
        csv::read_table_infer(name, &text)
    }
}

/// Render the vetted suite of a discovery run in `parse_cfds`-compatible
/// syntax, one constraint line per tableau row — exactly what `semandaq
/// discover --emit FILE` writes and `semandaq detect --cfds FILE` reads
/// back. Relations resolve against `schemas` by name.
pub fn discovered_cfd_text(
    d: &revival_discovery::Discovered,
    schemas: &[revival_relation::Schema],
) -> Result<String> {
    use revival_constraints::parser::cfd_to_text;
    let mut out = String::new();
    for cfd in &d.vetted {
        let schema = schemas
            .iter()
            .find(|s| s.name() == cfd.relation)
            .ok_or_else(|| Error::UnknownRelation(cfd.relation.clone()))?;
        out.push_str(&cfd_to_text(cfd, schema));
    }
    Ok(out)
}

/// Render mined CIND candidates in `parse_cinds`-compatible syntax.
pub fn discovered_cind_text(
    d: &revival_discovery::Discovered,
    schemas: &[revival_relation::Schema],
) -> Result<String> {
    use revival_constraints::parser::cind_to_text;
    let mut out = String::new();
    for m in &d.cinds {
        let find = |name: &str| {
            schemas
                .iter()
                .find(|s| s.name() == name)
                .ok_or_else(|| Error::UnknownRelation(name.to_string()))
        };
        out.push_str(&cind_to_text(
            &m.cind,
            find(&m.cind.from_relation)?,
            find(&m.cind.to_relation)?,
        ));
    }
    Ok(out)
}

/// Human-readable summary of a discovery run: headline counts, the
/// search accounting (every cap the miners applied), satisfiability of
/// the vetted suite, the vetted rules (up to `max` constraint lines —
/// `--emit` writes them all), and — below 1.0 confidence — the
/// approximate rules with their evidence.
pub fn describe_discovered(
    d: &revival_discovery::Discovered,
    schemas: &[revival_relation::Schema],
    max: usize,
) -> Result<String> {
    let mut out = format!(
        "{} rule(s) mined; {} CFD(s) after vetting; {} CIND candidate(s)\n",
        d.rules.len(),
        d.vetted.len(),
        d.cinds.len()
    );
    let s = &d.stats;
    out.push_str(&format!(
        "search: levels={} candidates={} pruned={} constants_subsumed={} lattice_truncated={}\n",
        s.levels,
        s.candidates_checked,
        s.candidates_pruned,
        s.constants_subsumed,
        if s.lattice_truncated { "yes (raise --max-lhs to go deeper)" } else { "no" }
    ));
    out.push_str(&format!(
        "vetting: {} -> {} tableau row(s) ({} implied, {} subsumed){}; satisfiable: {}\n",
        d.cover.rows_in,
        d.cover.rows_out,
        d.cover.implied_dropped,
        d.cover.subsumed_dropped,
        if s.cover_implication_skipped {
            " [suite too large for the implication drop — cheap cover only]"
        } else {
            ""
        },
        match d.satisfiable {
            Outcome::Yes => "yes",
            Outcome::No => "NO — vetted suite admits no non-empty instance",
            Outcome::ResourceLimit => "unknown (budget exhausted)",
        }
    ));
    let suite = discovered_cfd_text(d, schemas)?;
    let total = suite.lines().count();
    for line in suite.lines().take(max) {
        out.push_str("  ");
        out.push_str(line);
        out.push('\n');
    }
    if total > max {
        out.push_str(&format!(
            "  … and {} more (use --emit FILE for the full suite)\n",
            total - max
        ));
    }
    let approx: Vec<_> = d.rules.iter().filter(|m| m.confidence < 1.0).collect();
    if !approx.is_empty() {
        out.push_str("approximate rules (confidence < 1.0):\n");
        for m in approx.iter().take(max) {
            let schema = schemas
                .iter()
                .find(|s| s.name() == m.cfd.relation)
                .ok_or_else(|| Error::UnknownRelation(m.cfd.relation.clone()))?;
            out.push_str(&format!(
                "  {}  # confidence {:.3}, support {}\n",
                m.cfd.display(schema),
                m.confidence,
                m.support
            ));
        }
        if approx.len() > max {
            out.push_str(&format!("  … and {} more\n", approx.len() - max));
        }
    }
    if !d.cinds.is_empty() {
        out.push_str("cind candidates:\n");
        for line in discovered_cind_text(d, schemas)?.lines() {
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        }
    }
    Ok(out)
}

/// Parse a CFD suite whose lines may span several relations, resolving
/// each line against the schema named by its `relation(...)` prefix —
/// the multi-relation counterpart of [`parse_cfds`], which binds a
/// whole text to one schema.
pub fn parse_cfds_multi(text: &str, schemas: &[revival_relation::Schema]) -> Result<Vec<Cfd>> {
    use revival_constraints::parser::parse_cfd_line;
    let mut cfds = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let relation = line.split('(').next().unwrap_or_default().trim();
        let schema = schemas
            .iter()
            .find(|s| s.name() == relation)
            .ok_or_else(|| Error::UnknownRelation(relation.into()))?;
        cfds.extend(parse_cfd_line(line, schema)?);
    }
    Ok(cfds)
}

/// Human-readable listing for a catalog job's report: CFD violations
/// are described against their own relation's schema, CIND violations
/// against the two relations of the CIND.
pub fn describe_catalog_report(
    report: &ViolationReport,
    catalog: &revival_relation::Catalog,
    cfds: &[Cfd],
    cinds: &[revival_constraints::Cind],
    max: usize,
) -> String {
    use revival_detect::Violation;
    let mut out = format!(
        "{} violation(s); {} tuple(s) involved\n",
        report.len(),
        report.violating_tuples().len()
    );
    for v in report.violations.iter().take(max) {
        let line = match v {
            Violation::CfdConstant { cfd, .. } | Violation::CfdVariable { cfd, .. } => {
                let relation = &cfds[*cfd].relation;
                match catalog.get(relation) {
                    Ok(t) => format!("[{relation}] {}", describe_violation(v, cfds, t.schema())),
                    Err(_) => format!("{v:?}"),
                }
            }
            Violation::CindMissingWitness { cind, tuple } => {
                let c = &cinds[*cind];
                format!(
                    "[{}] tuple {tuple} has no witness in {} (cind#{cind})",
                    c.from_relation, c.to_relation
                )
            }
        };
        out.push_str("  ");
        out.push_str(&line);
        out.push('\n');
    }
    if report.len() > max {
        out.push_str(&format!("  … and {} more\n", report.len() - max));
    }
    out
}

/// Run RCK-based record matching between two CSV files whose holder
/// attributes follow the paper's card/billing shape (`fname`, `lname`,
/// `addr`, `phn`, `email` present in both). Returns the matched pairs
/// rendered one per line plus a summary.
pub fn match_records(left_csv: &str, right_csv: &str) -> Result<String> {
    use revival_matching::matcher::{AttributePair, BlockKey, Comparator, RecordMatcher};
    use revival_matching::rck::derive_rcks;
    use revival_matching::rules::paper_rules;
    let left = csv::read_table_infer("left", left_csv)?;
    let right = csv::read_table_infer("right", right_csv)?;
    let holder = ["fname", "lname", "addr", "phn", "email"];
    let mut pairs = Vec::new();
    for name in holder {
        let comparator = match name {
            "fname" => Comparator::PersonName,
            "lname" => Comparator::JaroWinkler(0.88),
            "addr" => Comparator::Address,
            "phn" => Comparator::Phone,
            _ => Comparator::Exact,
        };
        pairs.push(AttributePair::new(
            name,
            left.schema().attr_id(name)?,
            right.schema().attr_id(name)?,
            comparator,
        ));
    }
    let rcks = derive_rcks(&holder, &holder, &paper_rules(), 3);
    let matcher = RecordMatcher::new(
        pairs,
        rcks.clone(),
        vec![("phn", BlockKey::Digits), ("lname", BlockKey::Soundex)],
    );
    let found = matcher.run(&left, &right);
    let mut out = String::new();
    out.push_str(&format!("using {} derived RCK(s):\n", rcks.len()));
    for r in &rcks {
        out.push_str(&format!("  {r}\n"));
    }
    for &(l, r) in &found {
        out.push_str(&format!("{l} ~ {r}\n"));
    }
    out.push_str(&format!(
        "{} match(es) between {} left and {} right tuple(s)\n",
        found.len(),
        left.len(),
        right.len()
    ));
    Ok(out)
}

/// Generate a scenario dataset (CSV + CFD suite + ground truth) into
/// strings; the CLI writes them to disk.
pub fn generate_customer_scenario(rows: usize, noise: f64, seed: u64) -> (String, String, String) {
    use revival_dirty::customer::{attrs, generate, standard_cfds, CustomerConfig};
    use revival_dirty::noise::{inject, NoiseConfig};
    let data = generate(&CustomerConfig { rows, seed, ..Default::default() });
    let ds = inject(
        &data.table,
        &NoiseConfig::new(noise, vec![attrs::STREET, attrs::CITY, attrs::ZIP], seed ^ 0x5eed),
    );
    let cfds = standard_cfds(&data.schema);
    let cfd_text: String =
        cfds.iter().map(|c| revival_constraints::parser::cfd_to_text(c, &data.schema)).collect();
    (csv::write_table(&ds.clean), csv::write_table(&ds.dirty), cfd_text)
}

/// Generate the hospital (HOSP-style) scenario: the benchmark workload
/// the CI explain-smoke runs `detect --explain` on. Same contract as
/// [`generate_customer_scenario`]: `(clean csv, dirty csv, cfd text)`.
pub fn generate_hospital_scenario(rows: usize, noise: f64, seed: u64) -> (String, String, String) {
    use revival_dirty::hospital::{attrs, generate, standard_cfds, HospitalConfig};
    use revival_dirty::noise::{inject, NoiseConfig};
    let data = generate(&HospitalConfig { rows, seed, ..Default::default() });
    // Noise on state/zip/measure_name exercises every constraint of
    // the standard suite: the provider FD, zip -> state, the measure
    // dictionary, and both constant city rules.
    let ds = inject(
        &data.table,
        &NoiseConfig::new(
            noise,
            vec![attrs::STATE, attrs::ZIP, attrs::MEASURE_NAME],
            seed ^ 0x5eed,
        ),
    );
    let cfds = standard_cfds(&data.schema);
    let cfd_text: String =
        cfds.iter().map(|c| revival_constraints::parser::cfd_to_text(c, &data.schema)).collect();
    (csv::write_table(&ds.clean), csv::write_table(&ds.dirty), cfd_text)
}

#[cfg(test)]
mod tests {
    use super::*;

    const CSV: &str = "cc,ac,street,city,zip\n\
                       44,131,Crichton,edi,EH8\n\
                       44,131,Mayfield,edi,EH8\n\
                       01,908,Mtn,nyc,07974\n";
    const CFDS: &str = "customer([cc='44', zip] -> [street])\n\
                        customer([cc='01', ac='908'] -> [city='mh'])\n";

    #[test]
    fn load_detect_repair_roundtrip() {
        let s = Session::load("customer", CSV, CFDS).unwrap();
        let native = s.detect(Engine::Native).unwrap();
        assert_eq!(native.len(), 2);
        let via_sql = s.detect(Engine::Sql).unwrap();
        assert_eq!(native.violating_tuples(), via_sql.violating_tuples());
        let (fixed, summary) = s.repair().unwrap();
        assert!(summary.contains("residual=0"));
        let clean = Session { table: fixed, cfds: s.cfds.clone() };
        assert!(clean.detect(Engine::Native).unwrap().is_empty());
        // Sharded repair produces the identical table.
        for jobs in [2, 4] {
            let (sharded, _) = s.repair_jobs(jobs).unwrap();
            assert_eq!(sharded.diff_cells(&clean.table), 0, "jobs={jobs}");
        }
    }

    #[test]
    fn describe_lists_violations() {
        let s = Session::load("customer", CSV, CFDS).unwrap();
        let report = s.detect(Engine::Native).unwrap();
        let text = s.describe(&report, 10);
        assert!(text.contains("2 violation(s)"));
        assert!(text.contains("street") || text.contains("city"));
    }

    #[test]
    fn manual_edit_changes_detection() {
        let mut s = Session::load("customer", CSV, CFDS).unwrap();
        // Fix the city by hand → one violation disappears.
        s.apply_edit("t2:city=mh").unwrap();
        let report = s.detect(Engine::Native).unwrap();
        assert_eq!(report.len(), 1);
        // Bad edit specs rejected.
        assert!(s.apply_edit("nonsense").is_err());
        assert!(s.apply_edit("t0:nope=x").is_err());
        assert!(s.apply_edit("tXX:city=x").is_err());
    }

    #[test]
    fn analyze_reports_satisfiability() {
        let s = Session::load("customer", CSV, CFDS).unwrap();
        let text = s.analyze(100_000);
        assert!(text.contains("satisfiable: yes"));
        assert!(text.contains("minimal cover"));
    }

    #[test]
    fn generate_scenario_is_loadable() {
        let (clean, dirty, cfds) = generate_customer_scenario(50, 0.05, 7);
        let s = Session::load("customer", &dirty, &cfds).unwrap();
        assert_eq!(s.table.len(), 50);
        let clean_session = Session::load("customer", &clean, &cfds).unwrap();
        assert!(clean_session.detect(Engine::Native).unwrap().is_empty());
    }

    #[test]
    fn hospital_scenario_generates_and_explains() {
        let (clean, dirty, cfds) = generate_hospital_scenario(300, 0.08, 11);
        let clean_s = Session::load("hospital", &clean, &cfds).unwrap();
        assert!(clean_s.detect(Engine::Native).unwrap().is_empty());
        let s = Session::load("hospital", &dirty, &cfds).unwrap();
        let plain = s.detect(Engine::Native).unwrap();
        assert!(!plain.is_empty(), "noise must dirty the instance");
        // The profiled detect path is byte-identical and covers every
        // constraint of the suite with nonzero rows scanned.
        let (report, profile) = s.detect_explain(Engine::Native, 0, false).unwrap();
        assert_eq!(report, plain);
        assert_eq!(profile.constraints.len(), s.cfds.len());
        assert!(profile.constraints.iter().all(|c| c.rows_scanned > 0), "{profile:?}");
        assert!(profile.render_json().contains("\"constraints\""));
        // The profiled repair path matches the plain one exactly.
        let (fixed, summary, rprofile) = s.repair_jobs_explain(1).unwrap();
        let (fixed_plain, summary_plain) = s.repair_jobs(1).unwrap();
        assert_eq!(summary, summary_plain);
        assert_eq!(fixed.diff_cells(&fixed_plain), 0);
        for phase in ["detect", "resolve", "force"] {
            assert!(rprofile.phases.iter().any(|(p, _)| *p == phase), "{phase} missing");
        }
    }

    #[test]
    fn multi_relation_suite_parses_and_describes() {
        use revival_relation::{Catalog, Schema, Type};
        let cd_s = Schema::builder("cd")
            .attr("album", Type::Str)
            .attr("price", Type::Int)
            .attr("genre", Type::Str)
            .build();
        let book_s = Schema::builder("book")
            .attr("title", Type::Str)
            .attr("price", Type::Int)
            .attr("format", Type::Str)
            .build();
        let cfds = parse_cfds_multi(
            "cd([genre] -> [price])\n\n# comment\nbook([title] -> [format])\n",
            &[cd_s.clone(), book_s.clone()],
        )
        .unwrap();
        assert_eq!(cfds.len(), 2);
        assert_eq!(cfds[0].relation, "cd");
        assert_eq!(cfds[1].relation, "book");
        assert!(parse_cfds_multi("orders([a] -> [b])", std::slice::from_ref(&cd_s)).is_err());

        let mut cd = Table::new(cd_s.clone());
        cd.push(vec!["Dune".into(), Value::Int(20), "scifi".into()]).unwrap();
        cd.push(vec!["Foundation".into(), Value::Int(15), "scifi".into()]).unwrap();
        let mut catalog = Catalog::new();
        catalog.register(cd);
        catalog.register(Table::new(book_s.clone()));
        let cinds =
            revival_constraints::parser::parse_cinds("cd(album) <= book(title)", &[cd_s, book_s])
                .unwrap();
        let job = DetectJob::on_catalog(&catalog, &cfds).with_cinds(&cinds);
        let report = Engine::Native.detector(1).run(&job).unwrap();
        assert!(!report.is_empty());
        let text = describe_catalog_report(&report, &catalog, &cfds, &cinds, 10);
        assert!(text.contains("[cd]"), "got: {text}");
        assert!(text.contains("no witness in book"), "got: {text}");
    }

    #[test]
    fn discovery_loop_emits_reparseable_suite() {
        use revival_discovery::{
            DiscoverJob, DiscoverOptions, DiscoveryEngine, SequentialDiscovery,
        };
        let s = Session::load("customer", CSV, CFDS).unwrap();
        let opts = DiscoverOptions { min_support: 2, ..DiscoverOptions::default() };
        let d = SequentialDiscovery.run(&DiscoverJob::on_table(&s.table, opts)).unwrap();
        assert!(!d.vetted.is_empty());
        let schemas = [s.table.schema().clone()];
        // The emitted suite re-parses and holds on the profiled table:
        // the discover → emit → detect loop closes with zero violations.
        let text = discovered_cfd_text(&d, &schemas).unwrap();
        let clean =
            Session { table: s.table.clone(), cfds: parse_cfds(&text, s.table.schema()).unwrap() };
        assert!(!clean.cfds.is_empty());
        assert!(clean.detect(Engine::Native).unwrap().is_empty());
        let descr = describe_discovered(&d, &schemas, 40).unwrap();
        assert!(descr.contains("rule(s) mined"), "got: {descr}");
        assert!(descr.contains("satisfiable: yes"), "got: {descr}");
    }

    #[test]
    fn engine_parses() {
        assert_eq!("native".parse::<Engine>().unwrap(), Engine::Native);
        assert_eq!("sql".parse::<Engine>().unwrap(), Engine::Sql);
        assert_eq!("incremental".parse::<Engine>().unwrap(), Engine::Incremental);
        assert_eq!("parallel".parse::<Engine>().unwrap(), Engine::Parallel);
        assert!("oracle".parse::<Engine>().is_err());
        for e in [Engine::Native, Engine::Sql, Engine::Incremental, Engine::Parallel] {
            assert_eq!(e.as_str().parse::<Engine>().unwrap(), e);
            assert_eq!(e.detector(1).name(), e.as_str());
        }
    }

    #[test]
    fn all_engines_agree_and_parallel_is_byte_identical() {
        let s = Session::load("customer", CSV, CFDS).unwrap();
        let native = s.detect(Engine::Native).unwrap();
        for e in [Engine::Sql, Engine::Incremental, Engine::Parallel] {
            let mut got = s.detect_jobs(e, 4).unwrap();
            let mut want = native.clone();
            got.normalize();
            want.normalize();
            assert_eq!(got, want, "{} disagrees with native", e.as_str());
        }
        // Parallel matches the native report without normalisation.
        assert_eq!(s.detect_jobs(Engine::Parallel, 4).unwrap(), native);
    }
}
