//! `semandaq` — a CFD-based data-quality tool (after the VLDB'08 demo).
//!
//! ```text
//! semandaq generate --rows 1000 --noise 0.05 --seed 7 --out DIR
//! semandaq detect  --data dirty.csv --table customer --cfds cfds.txt \
//!                  [--engine native|sql|incremental|parallel] [--jobs N]
//! semandaq repair  --data dirty.csv --table customer --cfds cfds.txt --out fixed.csv \
//!                  [--engine native|sql|incremental|parallel] [--jobs N]
//! semandaq analyze --data dirty.csv --table customer --cfds cfds.txt
//! semandaq edit    --data dirty.csv --table customer --cfds cfds.txt \
//!                  --set t3:city=mh --set t9:zip=EH8 --out edited.csv
//! semandaq query   --data dirty.csv --table customer \
//!                  --sql "SELECT zip, COUNT(*) FROM customer GROUP BY zip"
//! semandaq match   --left card.csv --right billing.csv
//! ```

use semandaq::{generate_customer_scenario, Engine, Session};
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("semandaq: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Minimal flag parser: `--key value` pairs plus repeatable `--set`.
struct Flags {
    values: HashMap<String, String>,
    sets: Vec<String>,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut values = HashMap::new();
    let mut sets = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected flag, got `{}`", args[i]))?;
        let value = args.get(i + 1).ok_or_else(|| format!("flag --{key} needs a value"))?;
        if key == "set" {
            sets.push(value.clone());
        } else {
            values.insert(key.to_string(), value.clone());
        }
        i += 2;
    }
    Ok(Flags { values, sets })
}

impl Flags {
    fn get(&self, key: &str) -> Result<&str, String> {
        self.values.get(key).map(String::as_str).ok_or_else(|| format!("missing --{key}"))
    }

    fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.values.get(key).map(String::as_str).unwrap_or(default)
    }
}

fn load_session(flags: &Flags) -> Result<Session, String> {
    let data = flags.get("data")?;
    let table = flags.get_or("table", "customer");
    let cfds = flags.get("cfds")?;
    let csv_text = std::fs::read_to_string(data).map_err(|e| format!("{data}: {e}"))?;
    let cfd_text = std::fs::read_to_string(cfds).map_err(|e| format!("{cfds}: {e}"))?;
    Session::load(table, &csv_text, &cfd_text).map_err(|e| e.to_string())
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err(
            "usage: semandaq <generate|detect|repair|analyze|edit|query|match> [flags]".into()
        );
    };
    let flags = parse_flags(&args[1..])?;
    match cmd.as_str() {
        "generate" => {
            let rows: usize =
                flags.get_or("rows", "1000").parse().map_err(|_| "--rows must be an integer")?;
            let noise: f64 =
                flags.get_or("noise", "0.05").parse().map_err(|_| "--noise must be a float")?;
            let seed: u64 =
                flags.get_or("seed", "42").parse().map_err(|_| "--seed must be an integer")?;
            let out = PathBuf::from(flags.get("out")?);
            std::fs::create_dir_all(&out).map_err(|e| e.to_string())?;
            let (clean, dirty, cfds) = generate_customer_scenario(rows, noise, seed);
            std::fs::write(out.join("clean.csv"), clean).map_err(|e| e.to_string())?;
            std::fs::write(out.join("dirty.csv"), dirty).map_err(|e| e.to_string())?;
            std::fs::write(out.join("cfds.txt"), cfds).map_err(|e| e.to_string())?;
            println!("wrote clean.csv, dirty.csv, cfds.txt to {}", out.display());
            Ok(())
        }
        "detect" => {
            let session = load_session(&flags)?;
            // `--jobs N` without an explicit engine implies the parallel
            // engine; `--jobs 0` means one shard per available core.
            let default_engine =
                if flags.values.contains_key("jobs") { "parallel" } else { "native" };
            let engine: Engine =
                flags.get_or("engine", default_engine).parse().map_err(|e| format!("{e}"))?;
            let jobs: usize =
                flags.get_or("jobs", "0").parse().map_err(|_| "--jobs must be an integer")?;
            let report = session.detect_jobs(engine, jobs).map_err(|e| e.to_string())?;
            print!("{}", session.describe(&report, 25));
            Ok(())
        }
        "repair" => {
            let session = load_session(&flags)?;
            // `--jobs N` shards both detection and equivalence-class
            // resolution (0 = one shard per core); the repaired table is
            // byte-identical at any shard count. `--engine` picks the
            // detection engine for the before-repair report and, like
            // `detect`, defaults to parallel when `--jobs` is given.
            let default_engine =
                if flags.values.contains_key("jobs") { "parallel" } else { "native" };
            let engine: Engine =
                flags.get_or("engine", default_engine).parse().map_err(|e| format!("{e}"))?;
            let jobs: usize =
                flags.get_or("jobs", "1").parse().map_err(|_| "--jobs must be an integer")?;
            let before = session.detect_jobs(engine, jobs).map_err(|e| e.to_string())?;
            let (fixed, summary) = session.repair_jobs(jobs).map_err(|e| e.to_string())?;
            println!("before: {} violation(s) [{} engine]", before.len(), engine.as_str());
            println!("repair: {summary}");
            if let Ok(out) = flags.get("out") {
                std::fs::write(out, revival_relation::csv::write_table(&fixed))
                    .map_err(|e| e.to_string())?;
                println!("wrote {out}");
            }
            Ok(())
        }
        "analyze" => {
            let session = load_session(&flags)?;
            let budget: usize = flags
                .get_or("budget", "2000000")
                .parse()
                .map_err(|_| "--budget must be an integer")?;
            print!("{}", session.analyze(budget));
            Ok(())
        }
        "edit" => {
            let mut session = load_session(&flags)?;
            let before = session.detect(Engine::Native).map_err(|e| e.to_string())?;
            for spec in &flags.sets {
                session.apply_edit(spec).map_err(|e| e.to_string())?;
            }
            let after = session.detect(Engine::Native).map_err(|e| e.to_string())?;
            println!(
                "violations: {} -> {} after {} edit(s)",
                before.len(),
                after.len(),
                flags.sets.len()
            );
            print!("{}", session.describe(&after, 25));
            if let Ok(out) = flags.get("out") {
                std::fs::write(out, revival_relation::csv::write_table(&session.table))
                    .map_err(|e| e.to_string())?;
                println!("wrote {out}");
            }
            Ok(())
        }
        "query" => {
            let data = flags.get("data")?;
            let table_name = flags.get_or("table", "customer");
            let sql_text = flags.get("sql")?;
            let csv_text = std::fs::read_to_string(data).map_err(|e| format!("{data}: {e}"))?;
            let table = revival_relation::csv::read_table_infer(table_name, &csv_text)
                .map_err(|e| e.to_string())?;
            let mut catalog = revival_relation::Catalog::new();
            catalog.register(table);
            let rs = revival_relation::sql::run(sql_text, &catalog).map_err(|e| e.to_string())?;
            print!("{}", rs.render_text());
            println!("({} row(s))", rs.len());
            Ok(())
        }
        "match" => {
            let left = flags.get("left")?;
            let right = flags.get("right")?;
            let l = std::fs::read_to_string(left).map_err(|e| format!("{left}: {e}"))?;
            let r = std::fs::read_to_string(right).map_err(|e| format!("{right}: {e}"))?;
            let out = semandaq::match_records(&l, &r).map_err(|e| e.to_string())?;
            print!("{out}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}
