//! `semandaq` — a CFD-based data-quality tool (after the VLDB'08 demo).
//!
//! Run `semandaq --help` for the command summary ([`USAGE`]).

use semandaq::{generate_customer_scenario, Engine, Session};
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;

/// The command summary `--help` (and any bad invocation) prints.
const USAGE: &str = "\
usage: semandaq <command> [flags]

commands:
  generate --rows N --noise F --seed N --out DIR
           [--scenario customer|hospital]
                                 write a clean/dirty/CFD scenario
  detect   --data FILE --cfds FILE [--table NAME]
           [--data name=path]... [--cinds FILE]
           [--engine native|sql|incremental|parallel] [--jobs N]
           [--merged] [--explain [text|json]]
                                 report violations (repeat --data as
                                 name=path for a multi-relation catalog;
                                 --merged scans the suite merged by
                                 embedded FD, same report; --explain
                                 profiles the job per constraint —
                                 rows scanned, groups probed,
                                 violations, wall us — hot first;
                                 `--explain json` prints only the
                                 machine-readable profile)
  repair   --data FILE --cfds FILE [--out FILE] [--engine E] [--jobs N]
           [--explain [text|json]]
                                 compute a minimal-cost repair;
                                 --explain adds per-phase timings
                                 (detect/resolve/force) and cells
                                 changed per constraint
  discover --data FILE [--table NAME] [--data name=path]...
           [--min-support N] [--min-confidence F] [--max-lhs N]
           [--top-values N] [--budget N] [--jobs N]
           [--engine sequential|parallel]
           [--emit FILE] [--emit-cinds FILE] [--explain [text|json]]
                                 mine FDs/CFDs (and CINDs across a
                                 name=path catalog), vet them, print the
                                 suite in detect-compatible syntax;
                                 --min-confidence < 1.0 mines from dirty
                                 data; --emit writes the vetted suite;
                                 --explain profiles the lattice per
                                 level (candidates checked/pruned,
                                 partition-build us, g3 evaluations)
  analyze  --data FILE --cfds FILE [--budget N]
                                 satisfiability + minimal cover
  edit     --data FILE --cfds FILE --set tID:attr=value... [--out FILE]
                                 apply manual edits, re-detect
  query    --data FILE --sql TEXT [--table NAME]
                                 run SQL over the CSV
  match    --left FILE --right FILE
                                 RCK-based record matching
  serve    [--port N] [--jobs N] [--workers N] [--state DIR]
           [--shards N] [--wal] [--checkpoint-ops N]
           [--wal-group-max-wait MICROS]
           [--slow-log MICROS] [--trace-out FILE]
                                 line-delimited JSON protocol over TCP;
                                 register/append/delete/update/count/
                                 report/repair/discover/checkpoint/
                                 metrics/profile/shutdown; --shards
                                 hash-partitions the
                                 session by table (one lock per shard);
                                 --state restores DIR (snapshots + WAL
                                 replay) at start and checkpoints at
                                 clean shutdown; --wal fsync-logs every
                                 mutation before acking so kill -9
                                 loses nothing acked (concurrent
                                 writers share one group-commit fsync);
                                 --wal-group-max-wait lets a commit
                                 leader gather more writers for up to
                                 MICROS us before syncing (0 = sync at
                                 once); --checkpoint-ops auto-
                                 checkpoints a shard (on a background
                                 thread) every N logged ops;
                                 --slow-log logs any request
                                 over MICROS us with its per-phase
                                 breakdown; --trace-out writes a Chrome
                                 trace (chrome://tracing / Perfetto) at
                                 shutdown
  metrics  HOST:PORT [--watch SECS [--iterations N]]
                                 fetch a serve tier's metrics registry
                                 and print the Prometheus-style text
                                 exposition; --watch polls every SECS
                                 seconds and redraws windowed rates/sec
                                 and p50/p99 latencies in place
                                 (--iterations stops after N redraws,
                                 0 = until interrupted)
  profile  HOST:PORT [--last N]  fetch the per-request phase profiles
                                 of the serve tier's last N requests
                                 (newest first)
  watch    FILE --cfds FILE [--table NAME] [--poll-ms N]
           [--idle-exit N] [--jobs N]
                                 tail a growing CSV, reporting only the
                                 delta (no base rescans)
  snapshot save --data FILE --out FILE.sdq [--table NAME]
  snapshot load --data FILE.sdq
                                 write/open the columnar `.sdq` format
                                 (memory-mapped on open where possible)

Every --data flag accepts a `.sdq` snapshot wherever it accepts CSV.
`semandaq <command>` with missing flags explains what it needs.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("semandaq: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Minimal flag parser: `--key value` pairs; `--set` and `--data` may
/// repeat; `--merged` is boolean (takes no value).
struct Flags {
    values: HashMap<String, Vec<String>>,
    sets: Vec<String>,
}

/// Flags that take no value.
const BOOL_FLAGS: &[&str] = &["merged", "wal"];

/// Flags whose value is optional: a following token that is itself a
/// flag (or the end of the line) leaves the default.
const OPT_VALUE_FLAGS: &[(&str, &str)] = &[("explain", "text")];

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut values: HashMap<String, Vec<String>> = HashMap::new();
    let mut sets = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected flag, got `{}`", args[i]))?;
        if BOOL_FLAGS.contains(&key) {
            values.entry(key.to_string()).or_default().push("true".into());
            i += 1;
            continue;
        }
        if let Some((_, default)) = OPT_VALUE_FLAGS.iter().find(|(k, _)| *k == key) {
            match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => {
                    values.entry(key.to_string()).or_default().push(v.clone());
                    i += 2;
                }
                _ => {
                    values.entry(key.to_string()).or_default().push((*default).into());
                    i += 1;
                }
            }
            continue;
        }
        let value = args.get(i + 1).ok_or_else(|| format!("flag --{key} needs a value"))?;
        if key == "set" {
            sets.push(value.clone());
        } else {
            values.entry(key.to_string()).or_default().push(value.clone());
        }
        i += 2;
    }
    Ok(Flags { values, sets })
}

impl Flags {
    fn get(&self, key: &str) -> Result<&str, String> {
        self.values
            .get(key)
            .and_then(|v| v.first())
            .map(String::as_str)
            .ok_or_else(|| format!("missing --{key}"))
    }

    fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.values.get(key).and_then(|v| v.first()).map(String::as_str).unwrap_or(default)
    }

    fn get_all(&self, key: &str) -> &[String] {
        self.values.get(key).map(Vec::as_slice).unwrap_or_default()
    }

    fn contains(&self, key: &str) -> bool {
        self.values.contains_key(key)
    }
}

/// `--explain` output mode.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ExplainMode {
    Text,
    Json,
}

/// Parse the optional `--explain [text|json]` flag. `--explain json`
/// prints *only* the machine-readable profile, so scripts can pipe
/// stdout straight into a JSON parser.
fn explain_mode(flags: &Flags) -> Result<Option<ExplainMode>, String> {
    match flags.get("explain") {
        Err(_) => Ok(None),
        Ok("text") => Ok(Some(ExplainMode::Text)),
        Ok("json") => Ok(Some(ExplainMode::Json)),
        Ok(other) => Err(format!("--explain wants `text` or `json`, got `{other}`")),
    }
}

fn load_session(flags: &Flags) -> Result<Session, String> {
    let data = flags.get("data")?;
    let table = flags.get_or("table", "customer");
    let cfds = flags.get("cfds")?;
    let loaded = semandaq::load_table(table, data).map_err(|e| e.to_string())?;
    let cfd_text = std::fs::read_to_string(cfds).map_err(|e| format!("{cfds}: {e}"))?;
    Session::from_table(loaded, &cfd_text).map_err(|e| e.to_string())
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err(USAGE.into());
    };
    if matches!(cmd.as_str(), "--help" | "-h" | "help") {
        println!("{USAGE}");
        return Ok(());
    }
    // `watch` takes its file, `snapshot` its save/load verb, and
    // `metrics`/`profile` their HOST:PORT as a positional argument.
    let mut rest: Vec<String> = args[1..].to_vec();
    let mut positional = None;
    if matches!(cmd.as_str(), "watch" | "snapshot" | "metrics" | "profile")
        && rest.first().is_some_and(|a| !a.starts_with("--"))
    {
        positional = Some(rest.remove(0));
    }
    let flags = parse_flags(&rest)?;
    match cmd.as_str() {
        "generate" => {
            let rows: usize =
                flags.get_or("rows", "1000").parse().map_err(|_| "--rows must be an integer")?;
            let noise: f64 =
                flags.get_or("noise", "0.05").parse().map_err(|_| "--noise must be a float")?;
            let seed: u64 =
                flags.get_or("seed", "42").parse().map_err(|_| "--seed must be an integer")?;
            let out = PathBuf::from(flags.get("out")?);
            std::fs::create_dir_all(&out).map_err(|e| e.to_string())?;
            let (clean, dirty, cfds) = match flags.get_or("scenario", "customer") {
                "customer" => generate_customer_scenario(rows, noise, seed),
                "hospital" => semandaq::generate_hospital_scenario(rows, noise, seed),
                other => return Err(format!("unknown --scenario `{other}` (customer|hospital)")),
            };
            std::fs::write(out.join("clean.csv"), clean).map_err(|e| e.to_string())?;
            std::fs::write(out.join("dirty.csv"), dirty).map_err(|e| e.to_string())?;
            std::fs::write(out.join("cfds.txt"), cfds).map_err(|e| e.to_string())?;
            println!("wrote clean.csv, dirty.csv, cfds.txt to {}", out.display());
            Ok(())
        }
        "detect" => {
            // `--jobs N` without an explicit engine implies the parallel
            // engine; `--jobs 0` means one shard per available core.
            let default_engine = if flags.contains("jobs") { "parallel" } else { "native" };
            let engine: Engine =
                flags.get_or("engine", default_engine).parse().map_err(|e| format!("{e}"))?;
            let jobs: usize =
                flags.get_or("jobs", "0").parse().map_err(|_| "--jobs must be an integer")?;
            let merged = flags.contains("merged");
            let explain = explain_mode(&flags)?;
            let datas = flags.get_all("data");
            // Repeated `--data name=path` flags (or a single one in
            // name=path form) build a multi-relation catalog job;
            // a bare `--data path` keeps the single-table behaviour.
            if datas.len() > 1 || datas.first().is_some_and(|d| d.contains('=')) {
                return detect_catalog(&flags, engine, jobs, merged, explain);
            }
            let session = load_session(&flags)?;
            match explain {
                None => {
                    let report =
                        session.detect_opts(engine, jobs, merged).map_err(|e| e.to_string())?;
                    print!("{}", session.describe(&report, 25));
                }
                Some(mode) => {
                    // One profiled run — byte-identical report, plus the
                    // per-constraint profile (hot first).
                    let (report, profile) =
                        session.detect_explain(engine, jobs, merged).map_err(|e| e.to_string())?;
                    if mode == ExplainMode::Json {
                        println!("{}", profile.render_json());
                    } else {
                        print!("{}", session.describe(&report, 25));
                        print!("{}", profile.render_text());
                    }
                }
            }
            Ok(())
        }
        "repair" => {
            let session = load_session(&flags)?;
            // `--jobs N` shards both detection and equivalence-class
            // resolution (0 = one shard per core); the repaired table is
            // byte-identical at any shard count. `--engine` picks the
            // detection engine for the before-repair report and, like
            // `detect`, defaults to parallel when `--jobs` is given.
            let default_engine = if flags.contains("jobs") { "parallel" } else { "native" };
            let engine: Engine =
                flags.get_or("engine", default_engine).parse().map_err(|e| format!("{e}"))?;
            let jobs: usize =
                flags.get_or("jobs", "1").parse().map_err(|_| "--jobs must be an integer")?;
            let explain = explain_mode(&flags)?;
            let fixed = match explain {
                None => {
                    let before = session.detect_jobs(engine, jobs).map_err(|e| e.to_string())?;
                    let (fixed, summary) = session.repair_jobs(jobs).map_err(|e| e.to_string())?;
                    println!("before: {} violation(s) [{} engine]", before.len(), engine.as_str());
                    println!("repair: {summary}");
                    fixed
                }
                Some(mode) => {
                    let (fixed, summary, profile) =
                        session.repair_jobs_explain(jobs).map_err(|e| e.to_string())?;
                    if mode == ExplainMode::Json {
                        println!("{}", profile.render_json());
                    } else {
                        println!("repair: {summary}");
                        print!("{}", profile.render_text());
                    }
                    fixed
                }
            };
            if let Ok(out) = flags.get("out") {
                std::fs::write(out, revival_relation::csv::write_table(&fixed))
                    .map_err(|e| e.to_string())?;
                // Stderr, so `--explain json` stdout stays pure JSON.
                eprintln!("wrote {out}");
            }
            Ok(())
        }
        "discover" => discover(&flags),
        "analyze" => {
            let session = load_session(&flags)?;
            let budget: usize = flags
                .get_or("budget", "2000000")
                .parse()
                .map_err(|_| "--budget must be an integer")?;
            print!("{}", session.analyze(budget));
            Ok(())
        }
        "edit" => {
            let mut session = load_session(&flags)?;
            let before = session.detect(Engine::Native).map_err(|e| e.to_string())?;
            for spec in &flags.sets {
                session.apply_edit(spec).map_err(|e| e.to_string())?;
            }
            let after = session.detect(Engine::Native).map_err(|e| e.to_string())?;
            println!(
                "violations: {} -> {} after {} edit(s)",
                before.len(),
                after.len(),
                flags.sets.len()
            );
            print!("{}", session.describe(&after, 25));
            if let Ok(out) = flags.get("out") {
                std::fs::write(out, revival_relation::csv::write_table(&session.table))
                    .map_err(|e| e.to_string())?;
                println!("wrote {out}");
            }
            Ok(())
        }
        "query" => {
            let data = flags.get("data")?;
            let table_name = flags.get_or("table", "customer");
            let sql_text = flags.get("sql")?;
            let table = semandaq::load_table(table_name, data).map_err(|e| e.to_string())?;
            let mut catalog = revival_relation::Catalog::new();
            catalog.register(table);
            let rs = revival_relation::sql::run(sql_text, &catalog).map_err(|e| e.to_string())?;
            print!("{}", rs.render_text());
            println!("({} row(s))", rs.len());
            Ok(())
        }
        "match" => {
            let left = flags.get("left")?;
            let right = flags.get("right")?;
            let l = std::fs::read_to_string(left).map_err(|e| format!("{left}: {e}"))?;
            let r = std::fs::read_to_string(right).map_err(|e| format!("{right}: {e}"))?;
            let out = semandaq::match_records(&l, &r).map_err(|e| e.to_string())?;
            print!("{out}");
            Ok(())
        }
        "snapshot" => snapshot(positional.as_deref(), &flags),
        "serve" => {
            let port: usize =
                flags.get_or("port", "7744").parse().map_err(|_| "--port must be an integer")?;
            let jobs: usize =
                flags.get_or("jobs", "0").parse().map_err(|_| "--jobs must be an integer")?;
            let workers: usize =
                flags.get_or("workers", "4").parse().map_err(|_| "--workers must be an integer")?;
            let shards: usize =
                flags.get_or("shards", "1").parse().map_err(|_| "--shards must be an integer")?;
            let checkpoint_ops: u64 = flags
                .get_or("checkpoint-ops", "0")
                .parse()
                .map_err(|_| "--checkpoint-ops must be an integer")?;
            let wal = flags.contains("wal");
            let wal_group_max_wait_us: u64 = flags
                .get_or("wal-group-max-wait", "0")
                .parse()
                .map_err(|_| "--wal-group-max-wait must be an integer (us)")?;
            let state = flags.get("state").ok().map(PathBuf::from);
            if wal && state.is_none() {
                return Err("--wal requires --state DIR (the log lives there)".into());
            }
            let slow_log_us = match flags.get("slow-log") {
                Ok(v) => Some(v.parse::<u64>().map_err(|_| "--slow-log must be an integer (us)")?),
                Err(_) => None,
            };
            let trace_out = flags.get("trace-out").ok().map(PathBuf::from);
            // With `--state DIR`, a previous run's checkpoints are
            // restored — and its WAL tails replayed on top — before
            // binding, so clients resume against the tables, suites,
            // and tuple ids they knew (including everything acked
            // after the last checkpoint, if the WAL was on).
            let opts = revival_stream::ServeOptions {
                jobs,
                shards,
                wal,
                checkpoint_ops,
                wal_group_max_wait_us,
                state: state.clone(),
                slow_log_us,
                trace_out: trace_out.clone(),
            };
            let (server, restored) =
                revival_stream::Server::bind_opts(&format!("127.0.0.1:{port}"), &opts)
                    .map_err(|e| e.to_string())?;
            let addr = server.local_addr().map_err(|e| e.to_string())?;
            if restored.relations > 0 {
                println!(
                    "restored {} relation(s) from {}",
                    restored.relations,
                    state.as_deref().map(|p| p.display().to_string()).unwrap_or_default()
                );
            }
            if restored.replayed > 0 || restored.torn_bytes > 0 {
                println!(
                    "replayed {} WAL record(s) ({} torn byte(s) dropped)",
                    restored.replayed, restored.torn_bytes
                );
            }
            if restored.dropped_cinds > 0 {
                println!(
                    "warning: dropped {} cind(s) split across shards by a shard-count change",
                    restored.dropped_cinds
                );
            }
            // Announce the bound address first (tests bind --port 0 and
            // read the ephemeral port back from this line).
            println!(
                "semandaq serve listening on {addr} ({workers} worker(s), {} shard(s))",
                shards.max(1)
            );
            use std::io::Write;
            std::io::stdout().flush().ok();
            let summary = server.run(workers).map_err(|e| e.to_string())?;
            if let Some(dir) = &state {
                println!("saved {} relation(s) to {}", summary.saved_relations, dir.display());
            }
            if let Some(path) = &trace_out {
                println!("wrote {} trace event(s) to {}", summary.trace_events, path.display());
            }
            let by_verb: Vec<String> =
                summary.requests_by_verb.iter().map(|(verb, n)| format!("{verb}={n}")).collect();
            let groups = if summary.wal_group_commits > 0 {
                format!(
                    ", {} group commit(s), mean group size {:.1}",
                    summary.wal_group_commits,
                    summary.mean_group_size()
                )
            } else {
                String::new()
            };
            println!(
                "semandaq serve stopped (uptime {}s, {} request(s) [{}], {} checkpoint(s){groups})",
                summary.uptime_secs,
                summary.total_requests,
                by_verb.join(" "),
                summary.checkpoints
            );
            Ok(())
        }
        "metrics" => {
            let addr = positional
                .as_deref()
                .map(Ok)
                .unwrap_or_else(|| flags.get("addr"))
                .map_err(|_| "usage: semandaq metrics HOST:PORT [--watch SECS]".to_string())?
                .to_string();
            match flags.get("watch") {
                Ok(v) => {
                    let secs: u64 =
                        v.parse().map_err(|_| "--watch must be an integer (seconds)")?;
                    let iterations: u64 = flags
                        .get_or("iterations", "0")
                        .parse()
                        .map_err(|_| "--iterations must be an integer")?;
                    watch_metrics(&addr, secs.max(1), iterations)
                }
                Err(_) => fetch_metrics(&addr),
            }
        }
        "profile" => {
            let addr = positional
                .as_deref()
                .map(Ok)
                .unwrap_or_else(|| flags.get("addr"))
                .map_err(|_| "usage: semandaq profile HOST:PORT [--last N]".to_string())?
                .to_string();
            let last: u64 =
                flags.get_or("last", "8").parse().map_err(|_| "--last must be an integer")?;
            fetch_profiles(&addr, last)
        }
        "watch" => {
            let path = positional
                .as_deref()
                .map(Ok)
                .unwrap_or_else(|| flags.get("data"))
                .map_err(|_| "usage: semandaq watch FILE --cfds FILE [flags]".to_string())?
                .to_string();
            let table = flags.get_or("table", "customer").to_string();
            let cfd_path = flags.get("cfds")?;
            let poll_ms: u64 = flags
                .get_or("poll-ms", "200")
                .parse()
                .map_err(|_| "--poll-ms must be an integer")?;
            let idle_exit: usize = flags
                .get_or("idle-exit", "0")
                .parse()
                .map_err(|_| "--idle-exit must be an integer")?;
            let jobs: usize =
                flags.get_or("jobs", "0").parse().map_err(|_| "--jobs must be an integer")?;
            let cfd_text =
                std::fs::read_to_string(cfd_path).map_err(|e| format!("{cfd_path}: {e}"))?;
            watch(&path, &table, &cfd_text, poll_ms, idle_exit, jobs)
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

/// `semandaq discover`: profile a CSV (or a `--data name=path` catalog)
/// through the parallel [`revival_discovery`] engine layer — mine
/// FDs/CFDs level-wise (approximately, below `--min-confidence 1.0`),
/// vet the suite (minimal cover + satisfiability), lift violated INDs
/// to CIND candidates on catalogs, and print/emit everything in the
/// syntax `semandaq detect` reads back.
fn discover(flags: &Flags) -> Result<(), String> {
    use revival_discovery::{discovery_by_name, DiscoverJob, DiscoverOptions};
    let jobs: usize = flags.get_or("jobs", "0").parse().map_err(|_| "--jobs must be an integer")?;
    // `--jobs N` without an explicit engine implies the parallel engine.
    let default_engine = if flags.contains("jobs") { "parallel" } else { "sequential" };
    let engine_name = flags.get_or("engine", default_engine);
    let options = DiscoverOptions {
        min_support: flags
            .get_or("min-support", "3")
            .parse()
            .map_err(|_| "--min-support must be an integer")?,
        min_confidence: flags
            .get_or("min-confidence", "1.0")
            .parse()
            .map_err(|_| "--min-confidence must be a float")?,
        max_lhs: flags
            .get_or("max-lhs", "2")
            .parse()
            .map_err(|_| "--max-lhs must be an integer")?,
        top_values: flags
            .get_or("top-values", "8")
            .parse()
            .map_err(|_| "--top-values must be an integer")?,
        vet_budget: flags
            .get_or("budget", "50000")
            .parse()
            .map_err(|_| "--budget must be an integer")?,
        jobs,
        ..DiscoverOptions::default()
    };
    let engine = discovery_by_name(engine_name).map_err(|e| e.to_string())?;

    // Load the data: repeated `--data name=path` flags build a catalog
    // (enabling CIND discovery); a bare `--data path` profiles one
    // table named by `--table`.
    let datas = flags.get_all("data");
    let multi = datas.len() > 1 || datas.first().is_some_and(|d| d.contains('='));
    let (catalog, schemas) = if multi {
        load_catalog(datas)?
    } else {
        let path = flags.get("data")?;
        let name = flags.get_or("table", "customer");
        let table = semandaq::load_table(name, path).map_err(|e| e.to_string())?;
        let schemas = vec![table.schema().clone()];
        let mut catalog = revival_relation::Catalog::new();
        catalog.register(table);
        (catalog, schemas)
    };
    let job = if multi {
        DiscoverJob::on_catalog(&catalog, options)
    } else {
        DiscoverJob::on_table(catalog.get(schemas[0].name()).map_err(|e| e.to_string())?, options)
    };
    let explain = explain_mode(flags)?;
    let json_only = explain == Some(ExplainMode::Json);
    let (d, profile) = match explain {
        None => (engine.run(&job).map_err(|e| e.to_string())?, None),
        Some(_) => {
            let (d, p) = engine.run_profiled(&job).map_err(|e| e.to_string())?;
            (d, Some(p))
        }
    };
    if json_only {
        println!("{}", profile.as_ref().expect("json mode implies a profile").render_json());
    } else {
        print!("{}", semandaq::describe_discovered(&d, &schemas, 40).map_err(|e| e.to_string())?);
        if let Some(p) = &profile {
            print!("{}", p.render_text());
        }
    }
    if let Ok(out) = flags.get("emit") {
        let text = semandaq::discovered_cfd_text(&d, &schemas).map_err(|e| e.to_string())?;
        std::fs::write(out, text).map_err(|e| e.to_string())?;
        // Stderr when `--explain json`, so stdout stays pure JSON.
        if json_only {
            eprintln!("wrote {out}");
        } else {
            println!("wrote {out}");
        }
    }
    if let Ok(out) = flags.get("emit-cinds") {
        let text = semandaq::discovered_cind_text(&d, &schemas).map_err(|e| e.to_string())?;
        std::fs::write(out, text).map_err(|e| e.to_string())?;
        if json_only {
            eprintln!("wrote {out}");
        } else {
            println!("wrote {out}");
        }
    }
    Ok(())
}

/// One request/response round trip against a serve tier, with clear
/// one-line errors when nothing is listening: connection refused,
/// resolution failure, and timeouts each say what happened and where,
/// instead of dumping a raw OS error.
fn serve_roundtrip(
    addr: &str,
    request: &revival_stream::Request,
) -> Result<revival_stream::Response, String> {
    use std::io::{BufRead, BufReader, ErrorKind, Write};
    use std::net::ToSocketAddrs;
    let unresolved = || format!("cannot resolve `{addr}` (want HOST:PORT, e.g. 127.0.0.1:7744)");
    let sock = addr.to_socket_addrs().map_err(|_| unresolved())?.next().ok_or_else(unresolved)?;
    let stream = std::net::TcpStream::connect_timeout(&sock, std::time::Duration::from_secs(5))
        .map_err(|e| match e.kind() {
            ErrorKind::ConnectionRefused => {
                format!("no semandaq serve listening on {addr} (connection refused)")
            }
            ErrorKind::TimedOut => format!("connecting to {addr} timed out after 5s"),
            _ => format!("{addr}: {e}"),
        })?;
    stream.set_read_timeout(Some(std::time::Duration::from_secs(10))).map_err(|e| e.to_string())?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    writer.write_all(request.to_line().as_bytes()).map_err(|e| e.to_string())?;
    writer.flush().map_err(|e| e.to_string())?;
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).map_err(|e| match e.kind() {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => {
            format!("{addr}: timed out waiting for a response (10s)")
        }
        _ => format!("{addr}: {e}"),
    })?;
    let response = revival_stream::Response::parse(line.trim_end()).map_err(|e| e.to_string())?;
    if !response.is_ok() {
        return Err(response.str("error").unwrap_or("request failed").to_string());
    }
    Ok(response)
}

/// `semandaq metrics HOST:PORT`: one round trip of the line-delimited
/// JSON protocol — send the `metrics` verb, print the server's uptime
/// and the Prometheus-style text exposition it returns. The full
/// integer-valued JSON registry rides the same response under `json`
/// for scripts that want structure instead.
fn fetch_metrics(addr: &str) -> Result<(), String> {
    let response = serve_roundtrip(addr, &revival_stream::Request::Metrics { window_secs: 0 })?;
    if let Some(uptime) = response.int("uptime_secs") {
        println!("# uptime_secs {uptime}");
    }
    if let Some(shards) = response.int("shards") {
        println!("# shards {shards}");
    }
    print!("{}", response.str("text").unwrap_or_default());
    Ok(())
}

/// `semandaq metrics HOST:PORT --watch SECS`: poll the windowed
/// `metrics` verb every SECS seconds and redraw the server's rates/sec
/// and windowed p50/p99 latencies in place (ANSI clear + home). Each
/// poll pushes one registry snapshot server-side; the window renders
/// between the newest snapshot and the oldest one inside the trailing
/// SECS-second window, so the first poll only collects.
fn watch_metrics(addr: &str, secs: u64, iterations: u64) -> Result<(), String> {
    use std::io::Write;
    let mut round = 0u64;
    loop {
        let response =
            serve_roundtrip(addr, &revival_stream::Request::Metrics { window_secs: secs })?;
        round += 1;
        let uptime = response.int("uptime_secs").unwrap_or(0);
        let shards = response.int("shards").unwrap_or(0);
        let body = match response.str("windowed") {
            Some(w) => w.to_string(),
            None => format!("collecting the first {secs}s window…\n"),
        };
        print!("\x1b[2J\x1b[H");
        println!(
            "semandaq metrics --watch {secs}s — {addr} \
             (uptime {uptime}s, {shards} shard(s), poll #{round})"
        );
        print!("{body}");
        std::io::stdout().flush().ok();
        if iterations > 0 && round >= iterations {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_secs(secs));
    }
}

/// `semandaq profile HOST:PORT [--last N]`: print the per-request phase
/// profiles of the serve tier's last N requests, newest first — one
/// line per request, phases summing exactly to its total.
fn fetch_profiles(addr: &str, last: u64) -> Result<(), String> {
    let response = serve_roundtrip(addr, &revival_stream::Request::Profile { last })?;
    let count = response.int("count").unwrap_or(0);
    println!("# last {count} request(s), newest first");
    print!("{}", response.str("text").unwrap_or_default());
    Ok(())
}

/// `semandaq snapshot save|load`: convert any `--data` file (CSV or
/// `.sdq`) into a columnar snapshot, or open a snapshot and report what
/// it holds — the save path compacts the value pool, so it doubles as
/// an offline vacuum for long-lived state directories.
fn snapshot(verb: Option<&str>, flags: &Flags) -> Result<(), String> {
    match verb {
        Some("save") => {
            let data = flags.get("data")?;
            let name = flags.get_or("table", "customer");
            let out = flags.get("out")?;
            let table = semandaq::load_table(name, data).map_err(|e| e.to_string())?;
            table.save_snapshot(std::path::Path::new(out)).map_err(|e| e.to_string())?;
            let bytes = std::fs::metadata(out).map(|m| m.len()).unwrap_or(0);
            println!(
                "wrote {out}: {} row(s) × {} attr(s), {bytes} byte(s)",
                table.len(),
                table.schema().arity()
            );
            Ok(())
        }
        Some("load") => {
            let data = flags.get("data")?;
            let start = std::time::Instant::now();
            let table = revival_relation::Table::open_snapshot(std::path::Path::new(data))
                .map_err(|e| e.to_string())?;
            let ms = start.elapsed().as_secs_f64() * 1e3;
            println!(
                "{data}: relation `{}`, {} row(s) × {} attr(s), {} pooled value(s), \
                 opened in {ms:.2} ms",
                table.schema().name(),
                table.len(),
                table.schema().arity(),
                table.pool().len()
            );
            Ok(())
        }
        _ => Err("usage: semandaq snapshot save --data FILE --out FILE.sdq | \
                  snapshot load --data FILE.sdq"
            .into()),
    }
}

/// Build a catalog from repeated `--data name=path` specs — shared by
/// the multi-relation paths of `detect` and `discover`.
fn load_catalog(
    specs: &[String],
) -> Result<(revival_relation::Catalog, Vec<revival_relation::Schema>), String> {
    let mut catalog = revival_relation::Catalog::new();
    let mut schemas = Vec::new();
    for spec in specs {
        let (name, path) = spec
            .split_once('=')
            .ok_or_else(|| format!("--data `{spec}`: multi-relation jobs want name=path"))?;
        let table = semandaq::load_table(name, path).map_err(|e| e.to_string())?;
        schemas.push(table.schema().clone());
        catalog.register(table);
    }
    Ok((catalog, schemas))
}

/// Multi-relation `detect`: `--data name=path` flags become a catalog,
/// `--cfds` may span relations, `--cinds` (optional) adds inclusion
/// dependencies — the engine-supported `DetectJob::with_cinds` path.
fn detect_catalog(
    flags: &Flags,
    engine: Engine,
    jobs: usize,
    merged: bool,
    explain: Option<ExplainMode>,
) -> Result<(), String> {
    use revival_detect::DetectJob;
    let (catalog, schemas) = load_catalog(flags.get_all("data"))?;
    let cfd_path = flags.get("cfds")?;
    let cfd_text = std::fs::read_to_string(cfd_path).map_err(|e| format!("{cfd_path}: {e}"))?;
    let cfds = semandaq::parse_cfds_multi(&cfd_text, &schemas).map_err(|e| e.to_string())?;
    let cinds = match flags.get("cinds") {
        Ok(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            revival_constraints::parser::parse_cinds(&text, &schemas).map_err(|e| e.to_string())?
        }
        Err(_) => Vec::new(),
    };
    let job = DetectJob::on_catalog(&catalog, &cfds).with_cinds(&cinds).merged(merged);
    match explain {
        None => {
            let report = engine.detector(jobs).run(&job).map_err(|e| e.to_string())?;
            print!("{}", semandaq::describe_catalog_report(&report, &catalog, &cfds, &cinds, 25));
        }
        Some(mode) => {
            let (report, profile) =
                engine.detector(jobs).run_profiled(&job).map_err(|e| e.to_string())?;
            if mode == ExplainMode::Json {
                println!("{}", profile.render_json());
            } else {
                print!(
                    "{}",
                    semandaq::describe_catalog_report(&report, &catalog, &cfds, &cinds, 25)
                );
                print!("{}", profile.render_text());
            }
        }
    }
    Ok(())
}

/// Tail a growing CSV: load the base once, then feed only appended
/// bytes through a [`revival_stream::CsvTail`] into a
/// [`revival_stream::DeltaSession`] — each appended row costs `O(|Σ|)`,
/// never a base rescan (the exit summary prints the session's rescan
/// counter as proof).
fn watch(
    path: &str,
    table_name: &str,
    cfd_text: &str,
    poll_ms: u64,
    idle_exit: usize,
    jobs: usize,
) -> Result<(), String> {
    use revival_stream::{CsvTail, DeltaSession};
    use std::io::{Read, Seek, SeekFrom};

    let base_text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    // The snapshot may have caught the writer mid-append: only lines
    // ending in '\n' are base rows; a trailing fragment starts the
    // tail's partial-line buffer instead.
    let complete = match base_text.ends_with('\n') {
        true => base_text.len(),
        false => base_text.rfind('\n').map(|i| i + 1).unwrap_or(0),
    };
    let table = revival_relation::csv::read_table_infer(table_name, &base_text[..complete])
        .map_err(|e| e.to_string())?;
    let schema = table.schema().clone();
    let cfds =
        revival_constraints::parser::parse_cfds(cfd_text, &schema).map_err(|e| e.to_string())?;
    let base_rows = table.len();
    let base_lines = base_text[..complete].lines().count();
    let mut session = DeltaSession::new(jobs);
    session.register(table, cfds).map_err(|e| e.to_string())?;
    let mut count = session.violation_count().map_err(|e| e.to_string())?;
    println!("watching {path}: {base_rows} row(s), {count} violation(s)");
    let mut tail = CsvTail::new(schema, base_lines + 1);
    tail.feed(&base_text[complete..]).map_err(|e| e.to_string())?;
    let mut offset = base_text.len() as u64;
    let mut idle = 0usize;
    let mut appended = 0usize;
    let mut batches = 0usize;
    loop {
        std::thread::sleep(std::time::Duration::from_millis(poll_ms));
        let len = std::fs::metadata(path).map_err(|e| format!("{path}: {e}"))?.len();
        if len < offset {
            return Err(format!(
                "{path}: file shrank ({len} < {offset}); watch only tails appends"
            ));
        }
        if len == offset {
            idle += 1;
            if idle_exit > 0 && idle >= idle_exit {
                break;
            }
            continue;
        }
        let mut file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
        file.seek(SeekFrom::Start(offset)).map_err(|e| e.to_string())?;
        let mut bytes = Vec::new();
        file.take(len - offset).read_to_end(&mut bytes).map_err(|e| e.to_string())?;
        // The poll may have split a multi-byte UTF-8 character: feed the
        // valid prefix now, leave the split character for the next poll.
        let chunk = match std::str::from_utf8(&bytes) {
            Ok(s) => s,
            Err(e) if e.error_len().is_none() => {
                std::str::from_utf8(&bytes[..e.valid_up_to()]).unwrap_or_default()
            }
            Err(e) => {
                return Err(format!(
                    "{path}: invalid UTF-8 at byte {}",
                    offset + e.valid_up_to() as u64
                ))
            }
        };
        if chunk.is_empty() {
            // Only a split character arrived; treat the poll as idle so
            // `--idle-exit` still fires on a wedged writer.
            idle += 1;
            if idle_exit > 0 && idle >= idle_exit {
                break;
            }
            continue;
        }
        idle = 0;
        offset += chunk.len() as u64;
        let rows = tail.feed(chunk).map_err(|e| e.to_string())?;
        if rows.is_empty() {
            continue;
        }
        batches += 1;
        for row in rows {
            let id = session.insert(table_name, row).map_err(|e| e.to_string())?;
            appended += 1;
            let now = session.violation_count().map_err(|e| e.to_string())?;
            if now > count {
                println!("  {id}: +{} violation(s) (total {now})", now - count);
            }
            count = now;
        }
        println!("+{appended} row(s) total: {count} violation(s)");
        use std::io::Write;
        std::io::stdout().flush().ok();
    }
    let stats = session.stats();
    println!("watch: {appended} appended row(s) in {batches} batch(es); rescans={}", stats.rescans);
    Ok(())
}
