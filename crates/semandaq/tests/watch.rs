//! End-to-end test of `semandaq watch`: tail a growing CSV, see each
//! appended violation reported from the delta alone, exit after the
//! idle window — and prove no base rescans happened.

use std::io::Write;
use std::path::PathBuf;
use std::process::Command;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("semandaq-watch-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn watch_reports_appended_violations_without_rescans() {
    let dir = tmpdir("grow");
    let csv = dir.join("grow.csv");
    std::fs::write(&csv, "cc,zip,street\n44,EH8,Crichton\n01,07974,Mtn\n").unwrap();
    std::fs::write(dir.join("cfds.txt"), "customer([cc='44', zip] -> [street])\n").unwrap();

    let child = Command::new(env!("CARGO_BIN_EXE_semandaq"))
        .args(["watch", csv.to_str().unwrap()])
        .args(["--cfds", dir.join("cfds.txt").to_str().unwrap()])
        .args(["--table", "customer", "--poll-ms", "20", "--idle-exit", "75"])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();

    // Let the watcher load the base, then grow the file twice — once
    // with a clean row, once with a violating one (and once in two
    // chunks to exercise the partial-line buffer).
    std::thread::sleep(std::time::Duration::from_millis(300));
    let mut f = std::fs::OpenOptions::new().append(true).open(&csv).unwrap();
    f.write_all(b"01,10001,5th\n").unwrap();
    f.flush().unwrap();
    std::thread::sleep(std::time::Duration::from_millis(300));
    f.write_all(b"44,EH8,May").unwrap();
    f.flush().unwrap();
    std::thread::sleep(std::time::Duration::from_millis(150));
    f.write_all(b"field\n").unwrap();
    f.flush().unwrap();
    drop(f);

    let out = child.wait_with_output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stderr: {stderr}\nstdout: {stdout}");
    assert!(stdout.contains("watching"), "got: {stdout}");
    assert!(stdout.contains("2 row(s), 0 violation(s)"), "got: {stdout}");
    // The violating append is reported with its tuple id, from the
    // delta alone.
    assert!(stdout.contains("+1 violation(s)"), "got: {stdout}");
    assert!(stdout.contains("t3:"), "got: {stdout}");
    // Two appended rows, and the whole run never rescanned the base.
    assert!(stdout.contains("2 appended row(s)"), "got: {stdout}");
    assert!(stdout.contains("rescans=0"), "got: {stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn watch_rejects_missing_files_and_shrinkage() {
    let out = Command::new(env!("CARGO_BIN_EXE_semandaq"))
        .args(["watch", "/nonexistent.csv", "--cfds", "/nope.txt"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}
