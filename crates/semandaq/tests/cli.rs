//! End-to-end tests of the `semandaq` binary.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_semandaq"))
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("semandaq-test-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn generate_detect_repair_workflow() {
    let dir = tmpdir("workflow");
    // generate
    let out = bin()
        .args(["generate", "--rows", "300", "--noise", "0.05", "--seed", "5"])
        .args(["--out", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(dir.join("dirty.csv").exists());
    assert!(dir.join("cfds.txt").exists());

    // detect (native)
    let out = bin()
        .args(["detect", "--data", dir.join("dirty.csv").to_str().unwrap()])
        .args(["--table", "customer", "--cfds", dir.join("cfds.txt").to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("violation(s)"), "got: {stdout}");

    // detect (sql engine) agrees on the headline count.
    let out_sql = bin()
        .args(["detect", "--data", dir.join("dirty.csv").to_str().unwrap()])
        .args(["--table", "customer", "--cfds", dir.join("cfds.txt").to_str().unwrap()])
        .args(["--engine", "sql"])
        .output()
        .unwrap();
    assert!(out_sql.status.success());
    let first_line = |s: &str| s.lines().next().unwrap_or_default().to_string();
    assert_eq!(first_line(&stdout), first_line(&String::from_utf8_lossy(&out_sql.stdout)));

    // detect --merged agrees with the unmerged run on the headline
    // count, on every engine.
    for engine in ["native", "sql", "incremental", "parallel"] {
        let out_merged = bin()
            .args(["detect", "--data", dir.join("dirty.csv").to_str().unwrap()])
            .args(["--table", "customer", "--cfds", dir.join("cfds.txt").to_str().unwrap()])
            .args(["--engine", engine, "--merged"])
            .output()
            .unwrap();
        assert!(out_merged.status.success(), "{}", String::from_utf8_lossy(&out_merged.stderr));
        let merged_stdout = String::from_utf8_lossy(&out_merged.stdout).to_string();
        assert_eq!(
            stdout.lines().next(),
            merged_stdout.lines().next(),
            "--merged changes the violation count on engine {engine}"
        );
    }

    // detect (parallel engine, 4 shards) is byte-identical to native.
    let out_par = bin()
        .args(["detect", "--data", dir.join("dirty.csv").to_str().unwrap()])
        .args(["--table", "customer", "--cfds", dir.join("cfds.txt").to_str().unwrap()])
        .args(["--engine", "parallel", "--jobs", "4"])
        .output()
        .unwrap();
    assert!(out_par.status.success(), "{}", String::from_utf8_lossy(&out_par.stderr));
    assert_eq!(stdout, String::from_utf8_lossy(&out_par.stdout));

    // `--jobs` alone implies the parallel engine; report is unchanged.
    let out_jobs = bin()
        .args(["detect", "--data", dir.join("dirty.csv").to_str().unwrap()])
        .args(["--table", "customer", "--cfds", dir.join("cfds.txt").to_str().unwrap()])
        .args(["--jobs", "2"])
        .output()
        .unwrap();
    assert!(out_jobs.status.success());
    assert_eq!(stdout, String::from_utf8_lossy(&out_jobs.stdout));

    // incremental engine agrees on the headline count.
    let out_inc = bin()
        .args(["detect", "--data", dir.join("dirty.csv").to_str().unwrap()])
        .args(["--table", "customer", "--cfds", dir.join("cfds.txt").to_str().unwrap()])
        .args(["--engine", "incremental"])
        .output()
        .unwrap();
    assert!(out_inc.status.success());
    assert_eq!(first_line(&stdout), first_line(&String::from_utf8_lossy(&out_inc.stdout)));

    // repair
    let fixed = dir.join("fixed.csv");
    let out = bin()
        .args(["repair", "--data", dir.join("dirty.csv").to_str().unwrap()])
        .args(["--table", "customer", "--cfds", dir.join("cfds.txt").to_str().unwrap()])
        .args(["--out", fixed.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("residual=0"));

    // repair with 4 shards writes a byte-identical file.
    let fixed4 = dir.join("fixed4.csv");
    let out = bin()
        .args(["repair", "--data", dir.join("dirty.csv").to_str().unwrap()])
        .args(["--table", "customer", "--cfds", dir.join("cfds.txt").to_str().unwrap()])
        .args(["--jobs", "4", "--out", fixed4.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(std::fs::read(&fixed).unwrap(), std::fs::read(&fixed4).unwrap());

    // detect on the repaired file → zero violations.
    let out = bin()
        .args(["detect", "--data", fixed.to_str().unwrap()])
        .args(["--table", "customer", "--cfds", dir.join("cfds.txt").to_str().unwrap()])
        .output()
        .unwrap();
    assert!(String::from_utf8_lossy(&out.stdout).starts_with("0 violation(s)"));

    // analyze
    let out = bin()
        .args(["analyze", "--data", dir.join("dirty.csv").to_str().unwrap()])
        .args(["--table", "customer", "--cfds", dir.join("cfds.txt").to_str().unwrap()])
        .output()
        .unwrap();
    assert!(String::from_utf8_lossy(&out.stdout).contains("satisfiable: yes"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn discover_emit_detect_loop() {
    let dir = tmpdir("discover");
    // A dirty scenario with known planted rules.
    let out = bin()
        .args(["generate", "--rows", "400", "--noise", "0.03", "--seed", "9"])
        .args(["--out", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // Discover on the *clean* data; emit a suite in detect syntax.
    let rules = dir.join("rules.cfd");
    let out = bin()
        .args(["discover", "--data", dir.join("clean.csv").to_str().unwrap()])
        .args(["--table", "customer", "--emit", rules.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(stdout.contains("rule(s) mined"), "got: {stdout}");
    assert!(stdout.contains("satisfiable: yes"), "got: {stdout}");
    assert!(stdout.contains("search: levels="), "got: {stdout}");
    assert!(rules.exists());

    // The emitted suite re-parses: detect on the clean data reports
    // zero violations; on the dirty data it finds the planted noise.
    let out = bin()
        .args(["detect", "--data", dir.join("clean.csv").to_str().unwrap()])
        .args(["--table", "customer", "--cfds", rules.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(
        String::from_utf8_lossy(&out.stdout).starts_with("0 violation(s)"),
        "discovered suite must hold on the data it was mined from"
    );
    let out = bin()
        .args(["detect", "--data", dir.join("dirty.csv").to_str().unwrap()])
        .args(["--table", "customer", "--cfds", rules.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(!String::from_utf8_lossy(&out.stdout).starts_with("0 violation(s)"));

    // Approximate discovery on the *dirty* data (confidence < 1.0)
    // still surfaces rules; parallel output is byte-identical to
    // sequential at any --jobs.
    let seq = bin()
        .args(["discover", "--data", dir.join("dirty.csv").to_str().unwrap()])
        .args(["--table", "customer", "--min-confidence", "0.9"])
        .output()
        .unwrap();
    assert!(seq.status.success(), "{}", String::from_utf8_lossy(&seq.stderr));
    let seq_stdout = String::from_utf8_lossy(&seq.stdout).to_string();
    assert!(seq_stdout.contains("approximate rules"), "got: {seq_stdout}");
    for jobs in ["1", "4"] {
        let par = bin()
            .args(["discover", "--data", dir.join("dirty.csv").to_str().unwrap()])
            .args(["--table", "customer", "--min-confidence", "0.9", "--jobs", jobs])
            .output()
            .unwrap();
        assert!(par.status.success(), "{}", String::from_utf8_lossy(&par.stderr));
        assert_eq!(seq_stdout, String::from_utf8_lossy(&par.stdout), "--jobs {jobs}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn edit_command_applies_manual_changes() {
    let dir = tmpdir("edit");
    std::fs::write(dir.join("data.csv"), "cc,zip,street\n44,EH8,Crichton\n44,EH8,Mayfield\n")
        .unwrap();
    std::fs::write(dir.join("cfds.txt"), "customer([cc='44', zip] -> [street])\n").unwrap();
    let out = bin()
        .args(["edit", "--data", dir.join("data.csv").to_str().unwrap()])
        .args(["--table", "customer", "--cfds", dir.join("cfds.txt").to_str().unwrap()])
        .args(["--set", "t1:street=Crichton"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("violations: 1 -> 0"), "got: {stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn help_lists_every_subcommand() {
    for invocation in [&["--help"][..], &["-h"], &["help"]] {
        let out = bin().args(invocation).output().unwrap();
        assert!(out.status.success(), "{invocation:?}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("usage"), "got: {stdout}");
        for cmd in
            ["generate", "detect", "repair", "analyze", "edit", "query", "match", "serve", "watch"]
        {
            assert!(stdout.contains(cmd), "--help misses `{cmd}`: {stdout}");
        }
    }
}

#[test]
fn multi_relation_detect_with_cinds() {
    let dir = tmpdir("catalog");
    std::fs::write(dir.join("cd.csv"), "album,price,genre\nDune,20,a-book\nFoundation,15,a-book\n")
        .unwrap();
    std::fs::write(dir.join("book.csv"), "title,price,format\nDune,20,audio\n").unwrap();
    std::fs::write(dir.join("cfds.txt"), "cd([genre] -> [price])\nbook([title] -> [format])\n")
        .unwrap();
    std::fs::write(
        dir.join("cinds.txt"),
        "cd(album, price; genre='a-book') <= book(title, price; format='audio')\n",
    )
    .unwrap();
    let cd_spec = format!("cd={}", dir.join("cd.csv").display());
    let book_spec = format!("book={}", dir.join("book.csv").display());
    let out = bin()
        .args(["detect", "--data", &cd_spec, "--data", &book_spec])
        .args(["--cfds", dir.join("cfds.txt").to_str().unwrap()])
        .args(["--cinds", dir.join("cinds.txt").to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    // One CFD violation (the a-book genre group disagrees on price) and
    // one CIND violation (Foundation lacks an audio witness).
    assert!(stdout.contains("2 violation(s)"), "got: {stdout}");
    assert!(stdout.contains("[cd]"), "got: {stdout}");
    assert!(stdout.contains("no witness in book"), "got: {stdout}");

    // The parallel engine agrees on the catalog job.
    let out_par = bin()
        .args(["detect", "--data", &cd_spec, "--data", &book_spec])
        .args(["--cfds", dir.join("cfds.txt").to_str().unwrap()])
        .args(["--cinds", dir.join("cinds.txt").to_str().unwrap()])
        .args(["--jobs", "2"])
        .output()
        .unwrap();
    assert!(out_par.status.success(), "{}", String::from_utf8_lossy(&out_par.stderr));
    let first_line = |s: &str| s.lines().next().unwrap_or_default().to_string();
    assert_eq!(first_line(&stdout), first_line(&String::from_utf8_lossy(&out_par.stdout)));

    // Multi-relation specs without name= fail with guidance.
    let out = bin()
        .args(["detect", "--data", dir.join("cd.csv").to_str().unwrap(), "--data", &book_spec])
        .args(["--cfds", dir.join("cfds.txt").to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("name=path"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_invocations_fail_cleanly() {
    let out = bin().output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage"));
    assert!(stderr.contains("serve") && stderr.contains("watch"), "got: {stderr}");

    let out = bin().args(["frobnicate", "--x", "1"]).output().unwrap();
    assert!(!out.status.success());

    let out =
        bin().args(["detect", "--data", "/nonexistent.csv", "--cfds", "/nope"]).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn query_command_runs_sql() {
    let dir = tmpdir("query");
    std::fs::write(
        dir.join("data.csv"),
        "cc,zip,street\n44,EH8,Crichton\n44,EH8,Mayfield\n01,07974,Mtn\n",
    )
    .unwrap();
    let out = bin()
        .args(["query", "--data", dir.join("data.csv").to_str().unwrap()])
        .args(["--table", "customer"])
        .args(["--sql", "SELECT zip, COUNT(*) AS n FROM customer GROUP BY zip ORDER BY n DESC"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("EH8"), "got: {stdout}");
    assert!(stdout.contains("(2 row(s))"), "got: {stdout}");
    // Bad SQL → clean failure.
    let out = bin()
        .args(["query", "--data", dir.join("data.csv").to_str().unwrap()])
        .args(["--table", "customer", "--sql", "SELEC nope"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn match_command_links_varied_records() {
    let dir = tmpdir("match");
    std::fs::write(
        dir.join("card.csv"),
        "fname,lname,addr,phn,email\n\
         robert,smith,10 Mountain Avenue,555-1234,rob@x.com\n\
         alice,jones,5 Church Street,555-9999,alice@x.com\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("billing.csv"),
        "fname,lname,addr,phn,email\n\
         bob,smith,10 Mountain Ave,5551234,other@y.com\n\
         carol,wong,9 High St,555-0000,carol@z.com\n",
    )
    .unwrap();
    let out = bin()
        .args(["match", "--left", dir.join("card.csv").to_str().unwrap()])
        .args(["--right", dir.join("billing.csv").to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("1 match(es)"), "got: {stdout}");
    assert!(stdout.contains("t0 ~ t0"), "bob smith must match: {stdout}");
    std::fs::remove_dir_all(&dir).ok();
}
