//! End-to-end test of `semandaq serve`: spawn the binary on an
//! ephemeral port, drive a register/append/report round trip through a
//! TCP client speaking the line-delimited JSON protocol, and shut the
//! server down cleanly. CI runs this file as its serve smoke step.

use revival_stream::{Request, Response};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn spawn_server() -> (Child, std::net::SocketAddr, BufReader<std::process::ChildStdout>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_semandaq"))
        .args(["serve", "--port", "0", "--workers", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    // The first stdout line announces the bound address. The reader is
    // handed back so the pipe stays open for the server's exit banner.
    let stdout = child.stdout.take().unwrap();
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let addr = line
        .split_whitespace()
        .find_map(|w| w.parse::<std::net::SocketAddr>().ok())
        .unwrap_or_else(|| panic!("no address in banner: {line:?}"));
    (child, addr, reader)
}

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Client { stream, reader }
    }

    fn call(&mut self, req: &Request) -> Response {
        self.stream.write_all(req.to_line().as_bytes()).unwrap();
        self.stream.flush().unwrap();
        let mut line = String::new();
        loop {
            match self.reader.read_line(&mut line) {
                Ok(0) => panic!("server closed the connection"),
                Ok(_) if line.ends_with('\n') => break,
                Ok(_) => continue,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    continue
                }
                Err(e) => panic!("read: {e}"),
            }
        }
        Response::parse(&line).unwrap()
    }
}

#[test]
fn serve_round_trip_and_clean_shutdown() {
    let (mut child, addr, mut server_stdout) = spawn_server();
    let mut client = Client::connect(addr);

    let resp = client.call(&Request::Register {
        table: "customer".into(),
        csv: "cc,zip,street\n44,EH8,Crichton\n01,07974,Mtn\n".into(),
        cfds: "customer([cc='44', zip] -> [street])".into(),
        merged: false,
    });
    assert!(resp.is_ok(), "{resp:?}");
    assert_eq!(resp.int("rows"), Some(2));
    assert_eq!(resp.int("violations"), Some(0));

    let resp =
        client.call(&Request::Append { table: "customer".into(), row: "44,EH8,Mayfield".into() });
    assert!(resp.is_ok(), "{resp:?}");
    assert_eq!(resp.int("violations"), Some(1));
    let appended = resp.int("tuple").unwrap() as u64;

    // A second concurrent client observes the same live state.
    let mut other = Client::connect(addr);
    let resp = other.call(&Request::Count);
    assert_eq!(resp.int("violations"), Some(1));

    let resp = client.call(&Request::Report { max: 10 });
    assert!(resp.str("text").unwrap().contains("disagree on street"), "{resp:?}");

    // Fixing the appended tuple by hand clears the violation…
    let resp = client.call(&Request::Update {
        table: "customer".into(),
        tuple: appended,
        attr: "street".into(),
        value: "Crichton".into(),
    });
    assert_eq!(resp.int("violations"), Some(0));
    // …and breaking it again lets `repair` fix it incrementally.
    let resp = client.call(&Request::Update {
        table: "customer".into(),
        tuple: appended,
        attr: "street".into(),
        value: "Mayfield".into(),
    });
    assert_eq!(resp.int("violations"), Some(1));
    let resp = client.call(&Request::Repair { table: "customer".into() });
    assert!(resp.is_ok(), "{resp:?}");
    assert_eq!(resp.int("violations"), Some(0));

    // Unknown relations error without dropping the connection.
    let resp = client.call(&Request::Append { table: "orders".into(), row: "1".into() });
    assert!(!resp.is_ok());

    // `discover` mines a suite from the session's (repaired) state and
    // answers it in parse syntax; registering it keeps the session
    // clean (the mined rules hold on the data they were mined from).
    let resp = client.call(&Request::Discover {
        table: "customer".into(),
        min_support: 2,
        max_lhs: 2,
        confidence_pct: 100,
        register: true,
    });
    assert!(resp.is_ok(), "{resp:?}");
    assert!(resp.int("rules").unwrap() > 0, "{resp:?}");
    assert!(resp.str("text").unwrap().contains("customer(["), "{resp:?}");
    assert_eq!(resp.str("satisfiable"), Some("yes"));
    assert_eq!(resp.int("violations"), Some(0), "{resp:?}");

    let resp = client.call(&Request::Shutdown);
    assert!(resp.is_ok());
    let status = child.wait().unwrap();
    assert!(status.success(), "server exited with {status:?}");
    let mut rest = String::new();
    server_stdout.read_to_string(&mut rest).unwrap();
    assert!(rest.contains("stopped"), "missing exit banner: {rest:?}");
    let mut err = String::new();
    child.stderr.take().unwrap().read_to_string(&mut err).unwrap();
    assert!(err.is_empty(), "stderr: {err}");
}
