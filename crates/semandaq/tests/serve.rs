//! End-to-end tests of `semandaq serve`: spawn the binary on an
//! ephemeral port, drive round trips through a TCP client speaking the
//! line-delimited JSON protocol, and exercise the durability story —
//! clean shutdown, `kill -9` + WAL replay, and panic containment. CI
//! runs this file as its serve smoke step.

use revival_stream::{Request, Response};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn spawn_server_args(
    extra: &[&str],
) -> (Child, std::net::SocketAddr, BufReader<std::process::ChildStdout>) {
    let mut args = vec!["serve", "--port", "0", "--workers", "2"];
    args.extend_from_slice(extra);
    let mut child = Command::new(env!("CARGO_BIN_EXE_semandaq"))
        .args(&args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    // Restore/replay notes may precede the "listening on" banner; scan
    // until the bound address appears. The reader is handed back so the
    // pipe stays open for the server's exit banner.
    let stdout = child.stdout.take().unwrap();
    let mut reader = BufReader::new(stdout);
    let mut seen = String::new();
    let addr = loop {
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap() == 0 {
            panic!("server exited before announcing an address; stdout: {seen:?}");
        }
        seen.push_str(&line);
        if let Some(addr) =
            line.split_whitespace().find_map(|w| w.parse::<std::net::SocketAddr>().ok())
        {
            break addr;
        }
        assert!(seen.len() < 64 * 1024, "no address in banner: {seen:?}");
    };
    (child, addr, reader)
}

fn spawn_server() -> (Child, std::net::SocketAddr, BufReader<std::process::ChildStdout>) {
    spawn_server_args(&[])
}

fn temp_state_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("semandaq_serve_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Client { stream, reader }
    }

    fn call(&mut self, req: &Request) -> Response {
        self.stream.write_all(req.to_line().as_bytes()).unwrap();
        self.stream.flush().unwrap();
        let mut line = String::new();
        loop {
            match self.reader.read_line(&mut line) {
                Ok(0) => panic!("server closed the connection"),
                Ok(_) if line.ends_with('\n') => break,
                Ok(_) => continue,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    continue
                }
                Err(e) => panic!("read: {e}"),
            }
        }
        Response::parse(&line).unwrap()
    }
}

#[test]
fn serve_round_trip_and_clean_shutdown() {
    let (mut child, addr, mut server_stdout) = spawn_server();
    let mut client = Client::connect(addr);

    let resp = client.call(&Request::Register {
        table: "customer".into(),
        csv: "cc,zip,street\n44,EH8,Crichton\n01,07974,Mtn\n".into(),
        cfds: "customer([cc='44', zip] -> [street])".into(),
        merged: false,
    });
    assert!(resp.is_ok(), "{resp:?}");
    assert_eq!(resp.int("rows"), Some(2));
    assert_eq!(resp.int("violations"), Some(0));

    let resp =
        client.call(&Request::Append { table: "customer".into(), row: "44,EH8,Mayfield".into() });
    assert!(resp.is_ok(), "{resp:?}");
    assert_eq!(resp.int("violations"), Some(1));
    let appended = resp.int("tuple").unwrap() as u64;

    // A second concurrent client observes the same live state.
    let mut other = Client::connect(addr);
    let resp = other.call(&Request::Count { replica: false });
    assert_eq!(resp.int("violations"), Some(1));

    let resp = client.call(&Request::Report { max: 10, replica: false });
    assert!(resp.str("text").unwrap().contains("disagree on street"), "{resp:?}");

    // Fixing the appended tuple by hand clears the violation…
    let resp = client.call(&Request::Update {
        table: "customer".into(),
        tuple: appended,
        attr: "street".into(),
        value: "Crichton".into(),
    });
    assert_eq!(resp.int("violations"), Some(0));
    // …and breaking it again lets `repair` fix it incrementally.
    let resp = client.call(&Request::Update {
        table: "customer".into(),
        tuple: appended,
        attr: "street".into(),
        value: "Mayfield".into(),
    });
    assert_eq!(resp.int("violations"), Some(1));
    let resp = client.call(&Request::Repair { table: "customer".into() });
    assert!(resp.is_ok(), "{resp:?}");
    assert_eq!(resp.int("violations"), Some(0));

    // Unknown relations error without dropping the connection.
    let resp = client.call(&Request::Append { table: "orders".into(), row: "1".into() });
    assert!(!resp.is_ok());

    // `discover` mines a suite from the session's (repaired) state and
    // answers it in parse syntax; registering it keeps the session
    // clean (the mined rules hold on the data they were mined from).
    let resp = client.call(&Request::Discover {
        table: "customer".into(),
        min_support: 2,
        max_lhs: 2,
        confidence_pct: 100,
        register: true,
    });
    assert!(resp.is_ok(), "{resp:?}");
    assert!(resp.int("rules").unwrap() > 0, "{resp:?}");
    assert!(resp.str("text").unwrap().contains("customer(["), "{resp:?}");
    assert_eq!(resp.str("satisfiable"), Some("yes"));
    assert_eq!(resp.int("violations"), Some(0), "{resp:?}");

    let resp = client.call(&Request::Shutdown);
    assert!(resp.is_ok());
    let status = child.wait().unwrap();
    assert!(status.success(), "server exited with {status:?}");
    let mut rest = String::new();
    server_stdout.read_to_string(&mut rest).unwrap();
    assert!(rest.contains("stopped"), "missing exit banner: {rest:?}");
    let mut err = String::new();
    child.stderr.take().unwrap().read_to_string(&mut err).unwrap();
    assert!(err.is_empty(), "stderr: {err}");
}

/// The WAL acceptance test: every acked op survives `kill -9`.
#[test]
fn kill_nine_loses_nothing_acked() {
    let dir = temp_state_dir("kill9");
    let state = dir.to_str().unwrap().to_string();
    let args = ["--state", state.as_str(), "--wal", "--shards", "2"];

    let (mut child, addr, _stdout) = spawn_server_args(&args);
    let mut client = Client::connect(addr);
    let resp = client.call(&Request::Register {
        table: "customer".into(),
        csv: "cc,zip,street\n44,EH8,Crichton\n".into(),
        cfds: "customer([cc, zip] -> [street])".into(),
        merged: false,
    });
    assert!(resp.is_ok(), "{resp:?}");
    // Three acked appends (two of them violating), never checkpointed.
    for row in ["44,EH8,Mayfield", "44,EH8,Nicolson", "01,07974,Mtn"] {
        let resp = client.call(&Request::Append { table: "customer".into(), row: (*row).into() });
        assert!(resp.is_ok(), "{resp:?}");
    }
    let resp = client.call(&Request::Count { replica: false });
    let before = resp.int("violations").unwrap();
    assert!(before > 0, "{resp:?}");

    // SIGKILL: no shutdown, no save_state, no flush — only the WAL.
    child.kill().unwrap();
    child.wait().unwrap();

    let (mut child, addr, mut stdout) = spawn_server_args(&args);
    let mut client = Client::connect(addr);
    let resp = client.call(&Request::Count { replica: false });
    assert_eq!(resp.int("violations"), Some(before), "acked ops lost across kill -9");
    // The restored state keeps serving: a fresh conflicting group
    // lands on the same table with the same suite.
    let resp =
        client.call(&Request::Append { table: "customer".into(), row: "01,07974,Other".into() });
    assert!(resp.is_ok(), "{resp:?}");
    assert_eq!(resp.int("violations"), Some(before + 1), "one new violated group");

    let resp = client.call(&Request::Shutdown);
    assert!(resp.is_ok());
    assert!(child.wait().unwrap().success());
    let mut rest = String::new();
    stdout.read_to_string(&mut rest).unwrap();
    assert!(rest.contains("saved"), "shutdown checkpoint banner missing: {rest:?}");

    // Third boot leans on the shutdown checkpoint (WAL truncated).
    let (mut child, addr, _stdout) = spawn_server_args(&args);
    let mut client = Client::connect(addr);
    let resp = client.call(&Request::Count { replica: false });
    assert_eq!(resp.int("violations"), Some(before + 1));
    client.call(&Request::Shutdown);
    child.wait().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Panic containment end-to-end: a malformed-but-panic-inducing op
/// (duplicate CSV header trips a schema assertion) answers a typed
/// error, and a healthy op on a fresh connection still works.
#[test]
fn panicking_request_does_not_brick_the_server() {
    let (mut child, addr, _stdout) = spawn_server();
    let mut client = Client::connect(addr);
    let resp = client.call(&Request::Register {
        table: "dup".into(),
        csv: "a,a\n1,2\n".into(),
        cfds: String::new(),
        merged: false,
    });
    assert!(!resp.is_ok(), "{resp:?}");
    assert!(resp.str("error").unwrap().contains("panicked"), "{resp:?}");

    // A brand-new connection does real work afterwards.
    let mut fresh = Client::connect(addr);
    let resp = fresh.call(&Request::Register {
        table: "customer".into(),
        csv: "cc,zip,street\n44,EH8,Crichton\n".into(),
        cfds: "customer([cc, zip] -> [street])".into(),
        merged: false,
    });
    assert!(resp.is_ok(), "healthy op after panic: {resp:?}");
    let resp =
        fresh.call(&Request::Append { table: "customer".into(), row: "44,EH8,Mayfield".into() });
    assert!(resp.is_ok(), "{resp:?}");
    assert_eq!(resp.int("violations"), Some(1));

    let resp = fresh.call(&Request::Shutdown);
    assert!(resp.is_ok());
    // The panic's backtrace lands on stderr by design; only the exit
    // status and the protocol behaviour are asserted here.
    assert!(child.wait().unwrap().success());
}

/// The observability acceptance test: after a scripted op sequence
/// against a WAL-backed server, the `metrics` verb surfaces per-verb
/// request histograms, WAL fsync and checkpoint timings, replica vs
/// locked read counters, and panic/poison-recovery counters — and the
/// `--trace-out` file the shutdown writes is well-formed Chrome-trace
/// JSON.
#[test]
fn metrics_verb_surfaces_the_full_registry() {
    let dir = temp_state_dir("metrics");
    let state = dir.to_str().unwrap().to_string();
    let trace = dir.join("trace.json");
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = trace.to_str().unwrap().to_string();
    let args =
        ["--state", state.as_str(), "--wal", "--shards", "1", "--trace-out", trace_path.as_str()];
    let (mut child, addr, mut server_stdout) = spawn_server_args(&args);

    let mut client = Client::connect(addr);
    let resp = client.call(&Request::Register {
        table: "customer".into(),
        csv: "cc,zip,street\n44,EH8,Crichton\n".into(),
        cfds: "customer([cc, zip] -> [street])".into(),
        merged: false,
    });
    assert!(resp.is_ok(), "{resp:?}");
    let resp =
        client.call(&Request::Append { table: "customer".into(), row: "44,EH8,Mayfield".into() });
    assert!(resp.is_ok(), "{resp:?}");
    assert!(client.call(&Request::Count { replica: false }).is_ok());
    assert!(client.call(&Request::Count { replica: true }).is_ok());
    assert!(client.call(&Request::Checkpoint).is_ok());
    // A duplicate CSV header panics inside the shard's write lock; the
    // panic is contained, the lock poisons, and the next mutation
    // recovers it — both events must land in the registry.
    let resp = client.call(&Request::Register {
        table: "dup".into(),
        csv: "a,a\n1,2\n".into(),
        cfds: String::new(),
        merged: false,
    });
    assert!(!resp.is_ok(), "{resp:?}");
    let mut fresh = Client::connect(addr);
    let resp =
        fresh.call(&Request::Append { table: "customer".into(), row: "01,07974,Mtn".into() });
    assert!(resp.is_ok(), "append after panic: {resp:?}");

    let resp = fresh.call(&Request::Metrics { window_secs: 0 });
    assert!(resp.is_ok(), "{resp:?}");
    assert!(resp.int("uptime_secs").is_some());
    assert_eq!(resp.int("shards"), Some(1));
    // The registry JSON nests one level deeper than the flat protocol
    // parser handles, so assert its shape textually here; the CI smoke
    // step json.loads()es it for real.
    let json = resp.str("json").unwrap();
    assert!(json.starts_with('{') && json.ends_with('}'), "not an object: {json}");
    for section in ["\"counters\"", "\"gauges\"", "\"histograms\""] {
        assert!(json.contains(section), "registry json missing {section}: {json}");
    }
    let text = resp.str("text").unwrap();
    let counter = |name: &str| -> u64 {
        text.lines()
            .find(|l| l.split_whitespace().next() == Some(name))
            .unwrap_or_else(|| panic!("metric {name} missing from exposition:\n{text}"))
            .split_whitespace()
            .last()
            .unwrap()
            .parse()
            .unwrap()
    };
    // Per-verb request histograms with quantiles. The panicking
    // register unwinds before the latency observation, so only the
    // clean one counts here (the panic shows up in its own counter).
    assert!(counter("serve_requests_total{verb=\"register\"}") >= 1);
    assert!(counter("serve_requests_total{verb=\"append\"}") >= 2);
    assert!(counter("serve_request_us_count{verb=\"append\"}") >= 2);
    assert!(text.contains("serve_request_us{verb=\"append\",quantile=\"0.5\"}"), "{text}");
    assert!(text.contains("serve_request_us{verb=\"append\",quantile=\"0.99\"}"), "{text}");
    // WAL fsync and checkpoint timings.
    assert!(counter("wal_fsync_us_count") >= 2, "wal fsync histogram empty");
    assert!(counter("serve_checkpoint_us_count") >= 1);
    assert!(counter("serve_checkpoints_total") >= 1);
    // Replica vs locked reads.
    assert!(counter("serve_replica_reads_total") >= 1);
    assert!(counter("serve_locked_reads_total") >= 1);
    // Panic containment and poison recovery.
    assert!(counter("serve_requests_panicked_total") >= 1);
    assert!(counter("lock_poison_recovered_total") >= 1);
    // Per-phase timing reached the histograms.
    assert!(counter("serve_phase_us_count{phase=\"apply\"}") >= 1);
    assert!(counter("serve_phase_us_count{phase=\"wal_append\"}") >= 1);

    assert!(fresh.call(&Request::Shutdown).is_ok());
    assert!(child.wait().unwrap().success());

    // The exit banner carries uptime, per-verb tallies, and the
    // checkpoint count.
    let mut rest = String::new();
    server_stdout.read_to_string(&mut rest).unwrap();
    assert!(rest.contains("uptime"), "summary missing uptime: {rest:?}");
    assert!(rest.contains("append="), "summary missing verb tallies: {rest:?}");
    assert!(rest.contains("checkpoint(s)"), "summary missing checkpoints: {rest:?}");
    assert!(rest.contains("trace event(s)"), "summary missing trace note: {rest:?}");

    // The trace file parses: a JSON array of flat objects, one per
    // line, each a complete Chrome-trace event.
    let body = std::fs::read_to_string(&trace).unwrap();
    let inner = body.trim();
    assert!(inner.starts_with('[') && inner.ends_with(']'), "not an array: {inner:?}");
    let mut events = 0;
    for line in inner[1..inner.len() - 1].lines() {
        let line = line.trim().trim_end_matches(',');
        if line.is_empty() {
            continue;
        }
        let event = revival_stream::protocol::parse_object(line)
            .unwrap_or_else(|e| panic!("bad trace event {line:?}: {e}"));
        for key in ["name", "cat", "ph", "ts", "dur", "pid", "tid"] {
            assert!(event.iter().any(|(k, _)| k == key), "event missing {key}: {line:?}");
        }
        events += 1;
    }
    assert!(events > 0, "trace file has no events");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--slow-log 0` logs every request with its per-phase breakdown and
/// counts it in `serve_slow_requests_total`.
#[test]
fn slow_log_triggers_at_threshold() {
    let (mut child, addr, _stdout) = spawn_server_args(&["--slow-log", "0"]);
    let mut client = Client::connect(addr);
    let resp = client.call(&Request::Register {
        table: "customer".into(),
        csv: "cc,zip,street\n44,EH8,Crichton\n".into(),
        cfds: "customer([cc, zip] -> [street])".into(),
        merged: false,
    });
    assert!(resp.is_ok(), "{resp:?}");

    let resp = client.call(&Request::Metrics { window_secs: 0 });
    let text = resp.str("text").unwrap();
    let slow: u64 = text
        .lines()
        .find(|l| l.starts_with("serve_slow_requests_total "))
        .expect("slow counter missing")
        .split_whitespace()
        .last()
        .unwrap()
        .parse()
        .unwrap();
    assert!(slow >= 1, "slow-log never fired: {text}");

    assert!(client.call(&Request::Shutdown).is_ok());
    assert!(child.wait().unwrap().success());
    let mut err = String::new();
    child.stderr.take().unwrap().read_to_string(&mut err).unwrap();
    assert!(err.contains("slow request verb=register"), "stderr: {err:?}");
    assert!(err.contains("apply="), "no phase breakdown: {err:?}");
}
