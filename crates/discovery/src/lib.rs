//! # revival-discovery
//!
//! Profiling — *"to discover meta-data from sample data"* (§2 of the
//! paper), specialised to dependency discovery: given an instance, find
//! the FDs, CFDs and CINDs it satisfies (or *almost* satisfies). The
//! tutorial motivates this as *"deducing and discovering rules for
//! cleaning the data"*; cleaning suites in practice are discovered,
//! then vetted, then handed to detection and repair.
//!
//! ## The engine layer
//!
//! [`engine`] unifies every miner behind one dispatch, mirroring the
//! `Detector` trait of `revival-detect`: a [`engine::DiscoverJob`]
//! names the data (a table or a catalog) plus
//! [`engine::DiscoverOptions`] (`min_support`, `min_confidence`,
//! `max_lhs`, `jobs`); [`engine::SequentialDiscovery`] and
//! [`engine::ParallelDiscovery`] turn it into a
//! [`engine::Discovered`] suite — mined rules with per-rule
//! support/confidence, the vetted minimal cover
//! (`constraints::analysis`), CIND candidates on catalog jobs, and
//! [`engine::DiscoveryStats`] reporting every search bound. The
//! parallel engine shards each lattice level's candidate checks across
//! `std::thread::scope` workers with a deterministic candidate-order
//! merge, so its output is byte-identical to the sequential engine's at
//! any `jobs` count. Confidence (`1 − g3/support`, the
//! stripped-partition error of [`partition::Partition::g3_error`])
//! makes discovery usable on *dirty* data: `min_confidence < 1.0`
//! recovers the planted dependencies noise has chipped.
//!
//! The individual miners remain available:
//!
//! * [`partition`] — stripped partitions, refinement, and the `g3`
//!   error measure, the engine room of TANE;
//! * [`tane`] — the level-wise lattice walk ([`tane::mine_lattice`])
//!   and the classical exact-FD surface ([`tane::discover_fds`]);
//! * [`cfdminer`] — constant CFDs via free-itemset mining (CFDMiner);
//! * [`ctane`] — the conditional-pattern probe and the bounded-CTANE
//!   surface ([`ctane::discover_cfds`]);
//! * [`ind_disc`] — unary IND discovery across relations and lifting of
//!   violated INDs to CIND candidates (how the paper's book/CD CIND
//!   arises from data).
//!
//! Everything runs on the interned `GroupBy`/`Sym` kernel from
//! `revival-relation` — no `Vec<Value>` keys anywhere in the lattice.

pub mod cfdminer;
pub mod ctane;
pub mod engine;
pub mod ind_disc;
pub mod partition;
pub mod tane;

pub use cfdminer::mine_constant_cfds;
pub use ctane::discover_cfds;
pub use engine::{
    discovery_by_name, DiscoverJob, DiscoverOptions, Discovered, DiscoveryEngine, DiscoveryStats,
    MinedCfd, MinedCind, ParallelDiscovery, SequentialDiscovery,
};
pub use ind_disc::{discover_unary_inds, lift_to_cinds};
pub use tane::discover_fds;
