//! # revival-discovery
//!
//! Profiling — *"to discover meta-data from sample data"* (§2 of the
//! paper), specialised to dependency discovery: given an instance, find
//! the FDs and CFDs it satisfies. The tutorial motivates this as
//! *"deducing and discovering rules for cleaning the data"*; cleaning
//! suites in practice are discovered, then vetted by a domain expert.
//!
//! * [`partition`] — stripped partitions and refinement, the engine
//!   room of TANE;
//! * [`tane`] — level-wise discovery of minimal FDs (the classical
//!   baseline);
//! * [`cfdminer`] — constant CFDs via free-itemset mining (CFDMiner);
//! * [`ctane`] — general CFDs with mixed constant/wildcard patterns
//!   (a bounded CTANE);
//! * [`ind_disc`] — unary IND discovery across relations and lifting of
//!   violated INDs to CIND candidates (how the paper's book/CD CIND
//!   arises from data).

pub mod cfdminer;
pub mod ctane;
pub mod ind_disc;
pub mod partition;
pub mod tane;

pub use cfdminer::mine_constant_cfds;
pub use ctane::discover_cfds;
pub use ind_disc::{discover_unary_inds, lift_to_cinds};
pub use tane::discover_fds;
