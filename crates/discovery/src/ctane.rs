//! Bounded CTANE — discovery of general (variable) CFDs.
//!
//! General CFDs mix wildcards and constants in the LHS pattern:
//! `([cc='44', zip] → [street])`. The search is the conditional arm of
//! the level-wise miner in [`crate::tane::mine_lattice`]: for each
//! candidate embedded FD that fails the (confidence) check on the whole
//! table, single-constant patterns over the most frequent values are
//! probed on the matching sub-instance. This module owns the probe
//! kernel ([`pattern_support_error`], one interned grouping pass per
//! pattern — no `Vec<Value>` keys) and the classical surface
//! [`discover_cfds`], which now also returns [`DiscoveryStats`] so the
//! search bounds (`max_lhs`, `top_values`) are reported, never applied
//! silently.

use crate::engine::{DiscoverOptions, DiscoveryStats};
use revival_constraints::Cfd;
use revival_relation::{GroupBy, Sym, Table};

/// Options for [`discover_cfds`].
#[derive(Clone, Debug)]
pub struct CtaneOptions {
    /// Maximum LHS size.
    pub max_lhs: usize,
    /// Maximum number of constant positions in a pattern row (`0`
    /// disables conditional rules; currently at most one constant per
    /// row is probed).
    pub max_constants: usize,
    /// Minimum matching tuples for a pattern row.
    pub min_support: usize,
    /// Per attribute, only the `top_values` most frequent constants are
    /// tried (bounds the pattern lattice; the cut is reported in the
    /// returned stats).
    pub top_values: usize,
}

impl Default for CtaneOptions {
    fn default() -> Self {
        CtaneOptions { max_lhs: 2, max_constants: 1, min_support: 5, top_values: 8 }
    }
}

/// Support and `g3`-style error of the embedded FD `lhs → rhs`
/// restricted to rows whose `cond_attr` carries `value` — one grouping
/// pass on the interned kernel. The error is the minimum number of
/// matching tuples to remove so the conditional FD holds exactly;
/// confidence is `1 − err/support`.
pub(crate) fn pattern_support_error(
    table: &Table,
    lhs: &[usize],
    rhs: usize,
    cond_attr: usize,
    value: Sym,
) -> (usize, usize) {
    // Per LHS-projection group: the distinct RHS symbols seen with
    // their multiplicities (few per group, so a Vec beats a map).
    let mut groups: GroupBy<Box<[Sym]>, Vec<(Sym, usize)>> = GroupBy::new();
    let mut support = 0usize;
    let proj = table.proj(lhs);
    let cond_col = table.col(cond_attr);
    let rhs_col = table.col(rhs);
    for slot in table.live_slots() {
        if cond_col[slot] != value {
            continue;
        }
        support += 1;
        let counts = groups.entry_mut(
            proj.hash_at(slot),
            |k| proj.matches_at(slot, k),
            || (proj.key_at(slot), Vec::new()),
        );
        let r = rhs_col[slot];
        match counts.iter_mut().find(|(s, _)| *s == r) {
            Some((_, c)) => *c += 1,
            None => counts.push((r, 1)),
        }
    }
    let mut err = 0usize;
    for (_, counts) in groups.iter() {
        let total: usize = counts.iter().map(|(_, c)| *c).sum();
        let keep = counts.iter().map(|(_, c)| *c).max().unwrap_or(0);
        err += total - keep;
    }
    (support, err)
}

/// Discover variable CFDs per the options, with the search accounting.
/// Returned CFDs each carry one tableau row; merge with
/// [`revival_constraints::cfd::merge_by_embedded_fd`] if desired.
pub fn discover_cfds(table: &Table, options: &CtaneOptions) -> (Vec<Cfd>, DiscoveryStats) {
    let opts = DiscoverOptions {
        min_support: options.min_support,
        min_confidence: 1.0,
        max_lhs: options.max_lhs,
        max_constants: options.max_constants,
        top_values: options.top_values,
        ..DiscoverOptions::default()
    };
    let (mined, stats) = crate::tane::mine_lattice(table, &opts, 1);
    (mined.into_iter().map(|m| m.cfd).collect(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use revival_constraints::pattern::PatternValue;
    use revival_relation::{Schema, Type};

    fn table() -> Table {
        // zip → street holds only where cc='44'; globally violated.
        let s = Schema::builder("customer")
            .attr("cc", Type::Str)
            .attr("zip", Type::Str)
            .attr("street", Type::Str)
            .build();
        let mut t = Table::new(s);
        let rows = [
            ("44", "EH8", "Crichton"),
            ("44", "EH8", "Crichton"),
            ("44", "EH8", "Crichton"),
            ("44", "G1", "High"),
            ("44", "G1", "High"),
            ("01", "EH8", "Other1"), // breaks global zip → street
            ("01", "EH8", "Other2"),
            ("01", "10001", "5th"),
            ("01", "10001", "6th"), // breaks zip→street within cc=01 too
            ("01", "10001", "6th"),
        ];
        for (cc, zip, street) in rows {
            t.push(vec![cc.into(), zip.into(), street.into()]).unwrap();
        }
        t
    }

    #[test]
    fn finds_conditional_but_not_global_fd() {
        let t = table();
        let opts = CtaneOptions { max_lhs: 2, max_constants: 1, min_support: 3, top_values: 4 };
        let (cfds, _) = discover_cfds(&t, &opts);
        // ([cc='44', zip] → street) should be found…
        let zip = 1usize;
        let street = 2usize;
        let conditional = cfds.iter().any(|c| {
            c.lhs == vec![0, zip]
                && c.rhs == street
                && c.tableau[0].lhs[0] == PatternValue::constant("44")
                && c.tableau[0].lhs[1].is_wildcard()
        });
        assert!(conditional, "conditional CFD missing: {cfds:?}");
        // …and the global FD zip → street must NOT (it is violated).
        let global = cfds
            .iter()
            .any(|c| c.lhs == vec![zip] && c.rhs == street && c.tableau[0].is_embedded_fd_row());
        assert!(!global);
    }

    #[test]
    fn discovered_cfds_hold() {
        let t = table();
        let (cfds, _) = discover_cfds(&t, &CtaneOptions::default());
        for c in &cfds {
            assert!(c.satisfied_by(&t), "discovered CFD violated: {:?}", c);
        }
    }

    #[test]
    fn support_threshold_prunes_rare_patterns() {
        let t = table();
        let (strict, _) =
            discover_cfds(&t, &CtaneOptions { min_support: 100, ..CtaneOptions::default() });
        assert!(strict.is_empty());
    }

    #[test]
    fn plain_fd_subsumes_conditionals() {
        // When the global FD holds, no conditional row for it is emitted.
        let s = Schema::builder("r").attr("a", Type::Str).attr("b", Type::Str).build();
        let mut t = Table::new(s);
        for i in 0..10 {
            let a = format!("k{}", i % 3);
            let b = format!("v{}", i % 3);
            t.push(vec![a.into(), b.into()]).unwrap();
        }
        let (cfds, _) = discover_cfds(&t, &CtaneOptions { min_support: 2, ..Default::default() });
        let rows: Vec<&Cfd> = cfds.iter().filter(|c| c.lhs == vec![0] && c.rhs == 1).collect();
        assert_eq!(rows.len(), 1);
        assert!(rows[0].tableau[0].is_embedded_fd_row());
    }

    #[test]
    fn caps_are_reported_not_silent() {
        let t = table();
        // top_values=1 drops condition values on every probed attribute.
        let opts = CtaneOptions { max_lhs: 1, max_constants: 1, min_support: 3, top_values: 1 };
        let (_, stats) = discover_cfds(&t, &opts);
        assert!(stats.candidates_pruned > 0, "{stats:?}");
        assert!(stats.lattice_truncated, "max_lhs=1 over arity 3 cuts the lattice: {stats:?}");
        assert_eq!(stats.levels, 1);
        assert!(stats.candidates_checked > 0);
    }

    #[test]
    fn pattern_probe_matches_oracle() {
        let t = table();
        let cc44 = t.pool().lookup(&"44".into()).unwrap();
        // [cc='44'] restricted zip → street: 5 matching rows, exact.
        let (support, err) = pattern_support_error(&t, &[0, 1], 2, 0, cc44);
        assert_eq!((support, err), (5, 0));
        let cc01 = t.pool().lookup(&"01".into()).unwrap();
        // cc='01': EH8 splits {Other1, Other2} (1 removal) and 10001
        // splits {5th, 6th×2} (1 removal).
        let (support, err) = pattern_support_error(&t, &[0, 1], 2, 0, cc01);
        assert_eq!((support, err), (5, 2));
    }
}
