//! Bounded CTANE — discovery of general (variable) CFDs.
//!
//! General CFDs mix wildcards and constants in the LHS pattern:
//! `([cc='44', zip] → [street])`. Discovery walks candidate embedded FDs
//! `X → A` (small `|X|`), and for each searches the pattern lattice from
//! most general (all wildcards) downward: a pattern row is emitted if
//! the FD holds on the tuples matching it, it meets the support
//! threshold, and no more-general emitted row subsumes it.

use revival_constraints::pattern::{PatternRow, PatternValue};
use revival_constraints::Cfd;
use revival_relation::{Table, Value};
use std::collections::HashMap;

/// Options for [`discover_cfds`].
#[derive(Clone, Debug)]
pub struct CtaneOptions {
    /// Maximum LHS size.
    pub max_lhs: usize,
    /// Maximum number of constant positions in a pattern row.
    pub max_constants: usize,
    /// Minimum matching tuples for a pattern row.
    pub min_support: usize,
    /// Per attribute, only the `top_values` most frequent constants are
    /// tried (bounds the pattern lattice).
    pub top_values: usize,
}

impl Default for CtaneOptions {
    fn default() -> Self {
        CtaneOptions { max_lhs: 2, max_constants: 1, min_support: 5, top_values: 8 }
    }
}

/// Does `X → A` hold on the sub-instance matching `pattern` (positions
/// with `Some(v)` are constants), and how many tuples match?
fn holds_on_pattern(
    table: &Table,
    lhs: &[usize],
    rhs: usize,
    pattern: &[Option<Value>],
) -> (bool, usize) {
    let mut groups: HashMap<Vec<&Value>, &Value> = HashMap::new();
    let mut support = 0usize;
    let mut ok = true;
    for (_, row) in table.rows() {
        let matches =
            lhs.iter().zip(pattern).all(|(&a, p)| p.as_ref().map(|v| row[a] == *v).unwrap_or(true));
        if !matches {
            continue;
        }
        support += 1;
        if ok {
            let key: Vec<&Value> = lhs.iter().map(|&a| &row[a]).collect();
            match groups.get(&key) {
                Some(v) => {
                    if **v != row[rhs] {
                        ok = false;
                    }
                }
                None => {
                    groups.insert(key, &row[rhs]);
                }
            }
        }
    }
    (ok, support)
}

/// Most frequent values per attribute (candidate constants).
fn top_values(table: &Table, attr: usize, k: usize) -> Vec<Value> {
    let mut counts: HashMap<Value, usize> = HashMap::new();
    for (_, row) in table.rows() {
        *counts.entry(row[attr].clone()).or_insert(0) += 1;
    }
    let mut entries: Vec<(Value, usize)> = counts.into_iter().collect();
    entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    entries.into_iter().take(k).map(|(v, _)| v).collect()
}

/// Discover variable CFDs per the options. Returned CFDs each carry one
/// tableau row; merge with
/// [`revival_constraints::cfd::merge_by_embedded_fd`] if desired.
pub fn discover_cfds(table: &Table, options: &CtaneOptions) -> Vec<Cfd> {
    let arity = table.schema().arity();
    let relation = table.schema().name().to_string();
    let mut out: Vec<Cfd> = Vec::new();

    // Candidate LHS sets of size 1..=max_lhs.
    let attrs: Vec<usize> = (0..arity).collect();
    let mut lhs_sets: Vec<Vec<usize>> = Vec::new();
    for size in 1..=options.max_lhs {
        lhs_sets.extend(revival_constraints::fd::combinations(&attrs, size));
    }

    for lhs in &lhs_sets {
        for rhs in 0..arity {
            if lhs.contains(&rhs) {
                continue;
            }
            // Most-general pattern first (plain FD on the whole table).
            let all_wild: Vec<Option<Value>> = vec![None; lhs.len()];
            let (fd_holds, n) = holds_on_pattern(table, lhs, rhs, &all_wild);
            if fd_holds && n >= options.min_support {
                out.push(Cfd {
                    relation: relation.clone(),
                    lhs: lhs.clone(),
                    rhs,
                    tableau: vec![PatternRow::all_wildcards(lhs.len())],
                });
                continue; // any conditional variant is subsumed
            }
            if options.max_constants == 0 {
                continue;
            }
            // Try single-constant patterns (most-general conditionals).
            for (pos, &attr) in lhs.iter().enumerate() {
                for v in top_values(table, attr, options.top_values) {
                    let mut pattern = all_wild.clone();
                    pattern[pos] = Some(v.clone());
                    let (holds, support) = holds_on_pattern(table, lhs, rhs, &pattern);
                    if holds && support >= options.min_support {
                        let mut lhs_pats = vec![PatternValue::Wildcard; lhs.len()];
                        lhs_pats[pos] = PatternValue::Const(v.clone());
                        out.push(Cfd {
                            relation: relation.clone(),
                            lhs: lhs.clone(),
                            rhs,
                            tableau: vec![PatternRow::new(lhs_pats, PatternValue::Wildcard)],
                        });
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use revival_relation::{Schema, Type};

    fn table() -> Table {
        // zip → street holds only where cc='44'; globally violated.
        let s = Schema::builder("customer")
            .attr("cc", Type::Str)
            .attr("zip", Type::Str)
            .attr("street", Type::Str)
            .build();
        let mut t = Table::new(s);
        let rows = [
            ("44", "EH8", "Crichton"),
            ("44", "EH8", "Crichton"),
            ("44", "EH8", "Crichton"),
            ("44", "G1", "High"),
            ("44", "G1", "High"),
            ("01", "EH8", "Other1"), // breaks global zip → street
            ("01", "EH8", "Other2"),
            ("01", "10001", "5th"),
            ("01", "10001", "6th"), // breaks zip→street within cc=01 too
            ("01", "10001", "6th"),
        ];
        for (cc, zip, street) in rows {
            t.push(vec![cc.into(), zip.into(), street.into()]).unwrap();
        }
        t
    }

    #[test]
    fn finds_conditional_but_not_global_fd() {
        let t = table();
        let opts = CtaneOptions { max_lhs: 2, max_constants: 1, min_support: 3, top_values: 4 };
        let cfds = discover_cfds(&t, &opts);
        // ([cc='44', zip] → street) should be found…
        let zip = 1usize;
        let street = 2usize;
        let conditional = cfds.iter().any(|c| {
            c.lhs == vec![0, zip]
                && c.rhs == street
                && c.tableau[0].lhs[0] == PatternValue::constant("44")
                && c.tableau[0].lhs[1].is_wildcard()
        });
        assert!(conditional, "conditional CFD missing: {cfds:?}");
        // …and the global FD zip → street must NOT (it is violated).
        let global = cfds
            .iter()
            .any(|c| c.lhs == vec![zip] && c.rhs == street && c.tableau[0].is_embedded_fd_row());
        assert!(!global);
    }

    #[test]
    fn discovered_cfds_hold() {
        let t = table();
        let cfds = discover_cfds(&t, &CtaneOptions::default());
        for c in &cfds {
            assert!(c.satisfied_by(&t), "discovered CFD violated: {:?}", c);
        }
    }

    #[test]
    fn support_threshold_prunes_rare_patterns() {
        let t = table();
        let strict =
            discover_cfds(&t, &CtaneOptions { min_support: 100, ..CtaneOptions::default() });
        assert!(strict.is_empty());
    }

    #[test]
    fn plain_fd_subsumes_conditionals() {
        // When the global FD holds, no conditional row for it is emitted.
        let s = Schema::builder("r").attr("a", Type::Str).attr("b", Type::Str).build();
        let mut t = Table::new(s);
        for i in 0..10 {
            let a = format!("k{}", i % 3);
            let b = format!("v{}", i % 3);
            t.push(vec![a.into(), b.into()]).unwrap();
        }
        let cfds = discover_cfds(&t, &CtaneOptions { min_support: 2, ..Default::default() });
        let rows: Vec<&Cfd> = cfds.iter().filter(|c| c.lhs == vec![0] && c.rhs == 1).collect();
        assert_eq!(rows.len(), 1);
        assert!(rows[0].tableau[0].is_embedded_fd_row());
    }
}
