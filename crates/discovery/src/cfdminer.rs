//! CFDMiner — discovery of *constant* CFDs via free-itemset mining.
//!
//! A constant CFD `([X = tp] → [A = a])` with support `k` corresponds to
//! a **free itemset** `X=tp` (no proper subset has the same support)
//! whose *closure* (items present in every supporting tuple) contains
//! `(A, a)`. This module mines frequent itemsets apriori-style, keeps
//! the free ones, and emits one CFD per closure item outside the
//! generator. The scan runs on the table's interned symbol mirror —
//! items are `(attr, Sym)` pairs internally, so support counting and
//! closure computation never compare or clone a `Value` — and the
//! returned [`DiscoveryStats`] report every support/size cut the search
//! applied.

use crate::engine::{sharded_map, DiscoveryStats};
use revival_constraints::pattern::{PatternRow, PatternValue};
use revival_constraints::Cfd;
use revival_relation::{Sym, Table, Value};
use std::collections::HashMap;

/// An item is `(attribute, value)`.
pub type Item = (usize, Value);

/// The interned form the scan works on.
type SymItem = (usize, Sym);

/// Options for [`mine_constant_cfds`].
#[derive(Clone, Debug)]
pub struct MinerOptions {
    /// Minimum number of supporting tuples.
    pub min_support: usize,
    /// Maximum itemset (LHS) size.
    pub max_size: usize,
}

impl Default for MinerOptions {
    fn default() -> Self {
        MinerOptions { min_support: 3, max_size: 3 }
    }
}

/// A mined constant rule `lhs ⇒ (attr = value)` with its support.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConstantRule {
    pub lhs: Vec<Item>,
    pub rhs: Item,
    pub support: usize,
}

impl ConstantRule {
    /// Convert to a normal-form [`Cfd`] over `schema`.
    pub fn to_cfd(&self, schema: &revival_relation::Schema) -> Cfd {
        let lhs_attrs: Vec<usize> = self.lhs.iter().map(|(a, _)| *a).collect();
        let lhs_pats: Vec<PatternValue> =
            self.lhs.iter().map(|(_, v)| PatternValue::Const(v.clone())).collect();
        Cfd {
            relation: schema.name().to_string(),
            lhs: lhs_attrs,
            rhs: self.rhs.0,
            tableau: vec![PatternRow::new(lhs_pats, PatternValue::Const(self.rhs.1.clone()))],
        }
    }
}

/// A columnar view of a table's live rows: borrowed symbol columns plus
/// the live-slot list, addressed by *row position* (0..len, tombstones
/// skipped) as the lattice algorithms expect.
struct ColView<'a> {
    cols: Vec<&'a [Sym]>,
    slots: Vec<usize>,
}

impl<'a> ColView<'a> {
    fn new(table: &'a Table) -> Self {
        let arity = table.schema().arity();
        ColView {
            cols: (0..arity).map(|a| table.col(a)).collect(),
            slots: table.live_slots().collect(),
        }
    }

    fn len(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    fn sym(&self, pos: usize, attr: usize) -> Sym {
        self.cols[attr][self.slots[pos]]
    }
}

/// The row positions supporting an itemset (symbol comparisons only,
/// touching only the itemset's columns).
fn support_rows(view: &ColView<'_>, items: &[SymItem]) -> Vec<usize> {
    (0..view.len()).filter(|&pos| items.iter().all(|(a, s)| view.sym(pos, *a) == *s)).collect()
}

/// Closure of an itemset: all `(attr, sym)` constant across its
/// supporting rows (attributes outside the itemset only).
fn closure(view: &ColView<'_>, arity: usize, items: &[SymItem], supp: &[usize]) -> Vec<SymItem> {
    let mut out = Vec::new();
    let Some(&first) = supp.first() else { return out };
    for a in 0..arity {
        if items.iter().any(|(ia, _)| *ia == a) {
            continue;
        }
        let s = view.sym(first, a);
        if supp.iter().all(|&r| view.sym(r, a) == s) {
            out.push((a, s));
        }
    }
    out
}

/// Mine constant CFDs with the given support threshold, reporting the
/// items and itemsets the thresholds dropped and whether `max_size`
/// stopped the lattice early.
pub fn mine_constant_cfds(
    table: &Table,
    options: &MinerOptions,
) -> (Vec<ConstantRule>, DiscoveryStats) {
    mine_constant_cfds_sharded(table, options, 1)
}

/// [`mine_constant_cfds`] with each level's support scans sharded
/// across `jobs` scoped workers (the freeness/closure pass stays
/// sequential over the in-order results, so the output is
/// byte-identical at any shard count) — the entry point the parallel
/// discovery engine uses.
pub fn mine_constant_cfds_sharded(
    table: &Table,
    options: &MinerOptions,
    jobs: usize,
) -> (Vec<ConstantRule>, DiscoveryStats) {
    let mut stats = DiscoveryStats::default();
    let arity = table.schema().arity();
    let pool = table.pool();
    let view = ColView::new(table);

    // Level 1: frequent single items — one column scan per attribute.
    let mut counts: HashMap<SymItem, usize> = HashMap::new();
    for (a, col) in view.cols.iter().enumerate() {
        for &slot in &view.slots {
            *counts.entry((a, col[slot])).or_insert(0) += 1;
        }
    }
    let distinct_items = counts.len();
    let frequent_items: Vec<SymItem> = {
        let mut items: Vec<SymItem> =
            counts.into_iter().filter(|(_, c)| *c >= options.min_support).map(|(i, _)| i).collect();
        // Sort by (attr, value) — symbol ids are interning-order, so
        // order by the values they stand for.
        items.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| pool.value(a.1).cmp(pool.value(b.1))));
        items
    };
    stats.candidates_pruned += distinct_items - frequent_items.len();

    let mut rules: Vec<ConstantRule> = Vec::new();
    // Support cache for freeness checks: itemset → support count.
    let mut support_of: HashMap<Vec<SymItem>, usize> = HashMap::new();
    support_of.insert(Vec::new(), view.len());

    let mut level: Vec<Vec<SymItem>> = frequent_items.iter().map(|i| vec![*i]).collect();
    for size in 1..=options.max_size {
        if level.is_empty() {
            break;
        }
        stats.levels = stats.levels.max(size);
        // The per-itemset support scans dominate the level and are
        // independent — shard them; everything downstream reads the
        // in-order results, so the rule list stays byte-identical.
        let supports: Vec<Vec<usize>> =
            sharded_map(&level, jobs, |itemset| support_rows(&view, itemset));
        let mut next: Vec<Vec<SymItem>> = Vec::new();
        for (itemset, supp) in level.iter().zip(&supports) {
            stats.candidates_checked += 1;
            if supp.len() < options.min_support {
                stats.candidates_pruned += 1;
                continue;
            }
            support_of.insert(itemset.clone(), supp.len());
            // Freeness: every proper subset has strictly larger support.
            let free = (0..itemset.len()).all(|skip| {
                let sub: Vec<SymItem> = itemset
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != skip)
                    .map(|(_, x)| *x)
                    .collect();
                let sub_support = *support_of
                    .entry(sub.clone())
                    .or_insert_with(|| support_rows(&view, &sub).len());
                sub_support > supp.len()
            });
            if free {
                for (a, s) in closure(&view, arity, itemset, supp) {
                    rules.push(ConstantRule {
                        lhs: itemset
                            .iter()
                            .map(|(ia, is)| (*ia, pool.value(*is).clone()))
                            .collect(),
                        rhs: (a, pool.value(s).clone()),
                        support: supp.len(),
                    });
                }
            }
            // Extend for the next level (keep items sorted, unique attrs).
            let last = itemset.last().copied();
            for item in &frequent_items {
                if let Some(l) = &last {
                    let after =
                        item.0 > l.0 || (item.0 == l.0 && pool.value(item.1) > pool.value(l.1));
                    if !after {
                        continue;
                    }
                }
                if itemset.iter().any(|(a, _)| *a == item.0) {
                    continue;
                }
                let mut bigger = itemset.clone();
                bigger.push(*item);
                next.push(bigger);
            }
        }
        level = next;
    }
    // Candidates past `max_size` were never examined — say so.
    stats.lattice_truncated = !level.is_empty();
    rules.sort_by(|a, b| {
        a.lhs.len().cmp(&b.lhs.len()).then_with(|| format!("{a:?}").cmp(&format!("{b:?}")))
    });
    (rules, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use revival_relation::{Schema, Type};

    fn table() -> Table {
        // Planted rule: cc='01' ∧ ac='908' ⇒ city='mh' (and ac='908' alone
        // already determines city='mh' here).
        let s = Schema::builder("customer")
            .attr("cc", Type::Str)
            .attr("ac", Type::Str)
            .attr("city", Type::Str)
            .build();
        let mut t = Table::new(s);
        for (cc, ac, city) in [
            ("01", "908", "mh"),
            ("01", "908", "mh"),
            ("01", "908", "mh"),
            ("01", "212", "nyc"),
            ("01", "212", "nyc"),
            ("01", "212", "nyc"),
            ("44", "131", "edi"),
            ("44", "131", "edi"),
            ("44", "131", "edi"),
        ] {
            t.push(vec![cc.into(), ac.into(), city.into()]).unwrap();
        }
        t
    }

    #[test]
    fn finds_planted_constant_rule() {
        let t = table();
        let (rules, _) = mine_constant_cfds(&t, &MinerOptions { min_support: 3, max_size: 2 });
        let found = rules.iter().any(|r| {
            r.lhs == vec![(1usize, Value::from("908"))] && r.rhs == (2usize, Value::from("mh"))
        });
        assert!(found, "ac=908 ⇒ city=mh missing from {rules:?}");
    }

    #[test]
    fn freeness_suppresses_redundant_lhs() {
        let t = table();
        let (rules, _) = mine_constant_cfds(&t, &MinerOptions { min_support: 3, max_size: 2 });
        // (cc=01, ac=908) has the same support as (ac=908) alone → not
        // free → no rule with that 2-item LHS.
        let redundant = rules.iter().any(|r| {
            r.lhs.contains(&(0usize, Value::from("01")))
                && r.lhs.contains(&(1usize, Value::from("908")))
        });
        assert!(!redundant);
    }

    #[test]
    fn support_threshold_respected_and_reported() {
        let t = table();
        let (rules, stats) = mine_constant_cfds(&t, &MinerOptions { min_support: 4, max_size: 2 });
        for r in &rules {
            assert!(r.support >= 4);
        }
        // ac=908 group has support 3 → excluded at threshold 4, and the
        // drop shows up in the accounting.
        assert!(!rules.iter().any(|r| r.lhs == vec![(1usize, Value::from("908"))]));
        assert!(stats.candidates_pruned > 0, "{stats:?}");
    }

    #[test]
    fn truncation_reported_when_max_size_cuts() {
        let t = table();
        let (_, cut) = mine_constant_cfds(&t, &MinerOptions { min_support: 3, max_size: 1 });
        assert!(cut.lattice_truncated, "{cut:?}");
        assert_eq!(cut.levels, 1);
        let (_, full) = mine_constant_cfds(&t, &MinerOptions { min_support: 3, max_size: 3 });
        assert!(!full.lattice_truncated, "{full:?}");
    }

    #[test]
    fn mined_rules_hold_on_the_data() {
        let t = table();
        let (rules, _) = mine_constant_cfds(&t, &MinerOptions::default());
        for r in &rules {
            let cfd = r.to_cfd(t.schema());
            assert!(cfd.satisfied_by(&t), "mined rule violated: {r:?}");
        }
        assert!(!rules.is_empty());
    }
}
