//! CFDMiner — discovery of *constant* CFDs via free-itemset mining.
//!
//! A constant CFD `([X = tp] → [A = a])` with support `k` corresponds to
//! a **free itemset** `X=tp` (no proper subset has the same support)
//! whose *closure* (items present in every supporting tuple) contains
//! `(A, a)`. This module mines frequent itemsets apriori-style, keeps
//! the free ones, and emits one CFD per closure item outside the
//! generator.

use revival_constraints::pattern::{PatternRow, PatternValue};
use revival_constraints::Cfd;
use revival_relation::{Table, Value};
use std::collections::HashMap;

/// An item is `(attribute, value)`.
pub type Item = (usize, Value);

/// Options for [`mine_constant_cfds`].
#[derive(Clone, Debug)]
pub struct MinerOptions {
    /// Minimum number of supporting tuples.
    pub min_support: usize,
    /// Maximum itemset (LHS) size.
    pub max_size: usize,
}

impl Default for MinerOptions {
    fn default() -> Self {
        MinerOptions { min_support: 3, max_size: 3 }
    }
}

/// A mined constant rule `lhs ⇒ (attr = value)` with its support.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConstantRule {
    pub lhs: Vec<Item>,
    pub rhs: Item,
    pub support: usize,
}

impl ConstantRule {
    /// Convert to a normal-form [`Cfd`] over `schema`.
    pub fn to_cfd(&self, schema: &revival_relation::Schema) -> Cfd {
        let lhs_attrs: Vec<usize> = self.lhs.iter().map(|(a, _)| *a).collect();
        let lhs_pats: Vec<PatternValue> =
            self.lhs.iter().map(|(_, v)| PatternValue::Const(v.clone())).collect();
        Cfd {
            relation: schema.name().to_string(),
            lhs: lhs_attrs,
            rhs: self.rhs.0,
            tableau: vec![PatternRow::new(lhs_pats, PatternValue::Const(self.rhs.1.clone()))],
        }
    }
}

/// The tuple positions supporting an itemset.
fn support_rows(table: &Table, items: &[Item]) -> Vec<usize> {
    table
        .rows()
        .enumerate()
        .filter(|(_, (_, row))| items.iter().all(|(a, v)| row[*a] == *v))
        .map(|(pos, _)| pos)
        .collect()
}

/// Closure of an itemset: all `(attr, value)` constant across its
/// supporting rows (attributes outside the itemset only).
fn closure(table: &Table, items: &[Item], rows: &[usize]) -> Vec<Item> {
    let arity = table.schema().arity();
    let all_rows: Vec<&[Value]> = table.rows().map(|(_, r)| r).collect();
    let mut out = Vec::new();
    if rows.is_empty() {
        return out;
    }
    for (a, first) in all_rows[rows[0]].iter().enumerate().take(arity) {
        if items.iter().any(|(ia, _)| *ia == a) {
            continue;
        }
        if rows.iter().all(|&r| &all_rows[r][a] == first) {
            out.push((a, first.clone()));
        }
    }
    out
}

/// Mine constant CFDs with the given support threshold.
pub fn mine_constant_cfds(table: &Table, options: &MinerOptions) -> Vec<ConstantRule> {
    // Level 1: frequent single items.
    let arity = table.schema().arity();
    let mut counts: HashMap<Item, usize> = HashMap::new();
    for (_, row) in table.rows() {
        for (a, v) in row.iter().enumerate().take(arity) {
            *counts.entry((a, v.clone())).or_insert(0) += 1;
        }
    }
    let frequent_items: Vec<Item> = {
        let mut items: Vec<Item> =
            counts.into_iter().filter(|(_, c)| *c >= options.min_support).map(|(i, _)| i).collect();
        items.sort();
        items
    };

    let mut rules: Vec<ConstantRule> = Vec::new();
    // support cache for freeness checks: itemset → support count.
    let mut support_of: HashMap<Vec<Item>, usize> = HashMap::new();
    support_of.insert(Vec::new(), table.len());

    let mut level: Vec<Vec<Item>> = frequent_items.iter().map(|i| vec![i.clone()]).collect();
    for _size in 1..=options.max_size {
        let mut next: Vec<Vec<Item>> = Vec::new();
        for itemset in &level {
            // One attribute may appear once.
            let rows = support_rows(table, itemset);
            if rows.len() < options.min_support {
                continue;
            }
            support_of.insert(itemset.clone(), rows.len());
            // Freeness: every proper subset has strictly larger support.
            let free = (0..itemset.len()).all(|skip| {
                let sub: Vec<Item> = itemset
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != skip)
                    .map(|(_, x)| x.clone())
                    .collect();
                let sub_support = *support_of
                    .entry(sub.clone())
                    .or_insert_with(|| support_rows(table, &sub).len());
                sub_support > rows.len()
            });
            if free {
                for rhs in closure(table, itemset, &rows) {
                    rules.push(ConstantRule { lhs: itemset.clone(), rhs, support: rows.len() });
                }
            }
            // Extend for the next level (keep items sorted, unique attrs).
            let last = itemset.last().cloned();
            for item in &frequent_items {
                if let Some(l) = &last {
                    if *item <= *l {
                        continue;
                    }
                }
                if itemset.iter().any(|(a, _)| *a == item.0) {
                    continue;
                }
                let mut bigger = itemset.clone();
                bigger.push(item.clone());
                next.push(bigger);
            }
        }
        level = next;
        if level.is_empty() {
            break;
        }
    }
    rules.sort_by(|a, b| {
        a.lhs.len().cmp(&b.lhs.len()).then_with(|| format!("{a:?}").cmp(&format!("{b:?}")))
    });
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use revival_relation::{Schema, Type};

    fn table() -> Table {
        // Planted rule: cc='01' ∧ ac='908' ⇒ city='mh' (and ac='908' alone
        // already determines city='mh' here).
        let s = Schema::builder("customer")
            .attr("cc", Type::Str)
            .attr("ac", Type::Str)
            .attr("city", Type::Str)
            .build();
        let mut t = Table::new(s);
        for (cc, ac, city) in [
            ("01", "908", "mh"),
            ("01", "908", "mh"),
            ("01", "908", "mh"),
            ("01", "212", "nyc"),
            ("01", "212", "nyc"),
            ("01", "212", "nyc"),
            ("44", "131", "edi"),
            ("44", "131", "edi"),
            ("44", "131", "edi"),
        ] {
            t.push(vec![cc.into(), ac.into(), city.into()]).unwrap();
        }
        t
    }

    #[test]
    fn finds_planted_constant_rule() {
        let t = table();
        let rules = mine_constant_cfds(&t, &MinerOptions { min_support: 3, max_size: 2 });
        let found = rules.iter().any(|r| {
            r.lhs == vec![(1usize, Value::from("908"))] && r.rhs == (2usize, Value::from("mh"))
        });
        assert!(found, "ac=908 ⇒ city=mh missing from {rules:?}");
    }

    #[test]
    fn freeness_suppresses_redundant_lhs() {
        let t = table();
        let rules = mine_constant_cfds(&t, &MinerOptions { min_support: 3, max_size: 2 });
        // (cc=01, ac=908) has the same support as (ac=908) alone → not
        // free → no rule with that 2-item LHS.
        let redundant = rules.iter().any(|r| {
            r.lhs.contains(&(0usize, Value::from("01")))
                && r.lhs.contains(&(1usize, Value::from("908")))
        });
        assert!(!redundant);
    }

    #[test]
    fn support_threshold_respected() {
        let t = table();
        let rules = mine_constant_cfds(&t, &MinerOptions { min_support: 4, max_size: 2 });
        for r in &rules {
            assert!(r.support >= 4);
        }
        // ac=908 group has support 3 → excluded at threshold 4.
        assert!(!rules.iter().any(|r| r.lhs == vec![(1usize, Value::from("908"))]));
    }

    #[test]
    fn mined_rules_hold_on_the_data() {
        let t = table();
        let rules = mine_constant_cfds(&t, &MinerOptions::default());
        for r in &rules {
            let cfd = r.to_cfd(t.schema());
            assert!(cfd.satisfied_by(&t), "mined rule violated: {r:?}");
        }
        assert!(!rules.is_empty());
    }
}
