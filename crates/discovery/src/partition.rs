//! Stripped partitions (TANE's core data structure).
//!
//! The partition `π_X` of a relation groups tuple indices by their
//! projection on attribute set `X`. A *stripped* partition drops
//! singleton groups — an FD `X → A` holds iff stripping makes
//! `π_X` and `π_{X∪{A}}` have the same error (number of tuples minus
//! number of groups), and refinement `π_X · π_Y` is computable in
//! `O(n)`.

use revival_relation::{GroupBy, Sym, Table};
use std::collections::HashMap;

/// A stripped partition: groups of row positions, singletons removed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    /// Number of rows in the underlying relation.
    pub n_rows: usize,
    /// Equivalence classes with ≥ 2 members, each sorted.
    pub groups: Vec<Vec<usize>>,
}

impl Partition {
    /// Build `π_{attrs}` from a table (row positions, not tuple ids —
    /// discovery operates on a frozen snapshot; positions count live
    /// slots in order, skipping tombstones). Groups straight on the
    /// table's symbol columns — no key values are cloned or re-hashed,
    /// the same kernel the detection engines scan with.
    pub fn build(table: &Table, attrs: &[usize]) -> Partition {
        let proj = table.proj(attrs);
        let mut map: GroupBy<Box<[Sym]>, Vec<usize>> = GroupBy::new();
        for (pos, slot) in table.live_slots().enumerate() {
            map.entry_mut(
                proj.hash_at(slot),
                |k| proj.matches_at(slot, k),
                || (proj.key_at(slot), Vec::new()),
            )
            .push(pos);
        }
        let mut groups: Vec<Vec<usize>> =
            map.into_entries().map(|(.., g)| g).filter(|g| g.len() >= 2).collect();
        groups.sort();
        Partition { n_rows: table.len(), groups }
    }

    /// Number of equivalence classes including stripped singletons.
    pub fn class_count(&self) -> usize {
        let in_groups: usize = self.groups.iter().map(Vec::len).sum();
        self.groups.len() + (self.n_rows - in_groups)
    }

    /// TANE's error measure `e(X) = (Σ|g|) - #groups` over stripped
    /// groups: the minimum number of rows to remove to make `X` a key.
    pub fn error(&self) -> usize {
        self.groups.iter().map(|g| g.len() - 1).sum()
    }

    /// Refine with another partition: `π_{X∪Y} = π_X · π_Y` (linear).
    pub fn refine(&self, other: &Partition) -> Partition {
        // Map row → other's group id (or usize::MAX for singleton).
        let mut group_of = vec![usize::MAX; self.n_rows];
        for (gi, g) in other.groups.iter().enumerate() {
            for &r in g {
                group_of[r] = gi;
            }
        }
        let mut out: Vec<Vec<usize>> = Vec::new();
        let mut sub: HashMap<usize, Vec<usize>> = HashMap::new();
        for g in &self.groups {
            sub.clear();
            let mut singles_skipped = true;
            let _ = singles_skipped;
            for &r in g {
                let og = group_of[r];
                if og != usize::MAX {
                    sub.entry(og).or_default().push(r);
                }
            }
            for (_, rows) in sub.drain() {
                if rows.len() >= 2 {
                    let mut rows = rows;
                    rows.sort();
                    out.push(rows);
                }
            }
            singles_skipped = false;
            let _ = singles_skipped;
        }
        out.sort();
        Partition { n_rows: self.n_rows, groups: out }
    }

    /// Does the FD `X → A` hold, where `self = π_X` and
    /// `refined = π_{X∪{A}}`? (Same error ⇔ no group of `X` splits.)
    pub fn implies(&self, refined: &Partition) -> bool {
        self.error() == refined.error()
    }

    /// TANE's `g3` measure for the FD whose partitions are `self = π_X`
    /// and `refined = π_{X∪{A}}`: the minimum number of tuples to
    /// delete so `X → A` holds exactly. Per `π_X` group, everything
    /// outside the largest `π_{X∪{A}}` subgroup must go (stripped
    /// singletons of the refined partition count as size-1 subgroups).
    /// `0` iff the FD holds; approximate discovery turns this into a
    /// per-rule confidence `1 − g3/n`.
    pub fn g3_error(&self, refined: &Partition) -> usize {
        let mut group_of = vec![usize::MAX; self.n_rows];
        for (gi, g) in refined.groups.iter().enumerate() {
            for &r in g {
                group_of[r] = gi;
            }
        }
        let mut counts: HashMap<usize, usize> = HashMap::new();
        let mut err = 0usize;
        for g in &self.groups {
            counts.clear();
            let mut singles = 0usize;
            for &r in g {
                match group_of[r] {
                    usize::MAX => singles += 1,
                    gi => *counts.entry(gi).or_insert(0) += 1,
                }
            }
            let keep = counts.values().copied().max().unwrap_or(0).max(usize::from(singles > 0));
            err += g.len() - keep;
        }
        err
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revival_relation::{Schema, Type};

    fn table() -> Table {
        let s = Schema::builder("r")
            .attr("a", Type::Str)
            .attr("b", Type::Str)
            .attr("c", Type::Str)
            .build();
        let mut t = Table::new(s);
        for (a, b, c) in
            [("x", "1", "p"), ("x", "1", "p"), ("y", "2", "q"), ("y", "3", "q"), ("z", "4", "r")]
        {
            t.push(vec![a.into(), b.into(), c.into()]).unwrap();
        }
        t
    }

    #[test]
    fn build_strips_singletons() {
        let t = table();
        let pa = Partition::build(&t, &[0]);
        // a-groups: {0,1}, {2,3}, {4}(stripped).
        assert_eq!(pa.groups, vec![vec![0, 1], vec![2, 3]]);
        assert_eq!(pa.class_count(), 3);
        assert_eq!(pa.error(), 2);
    }

    #[test]
    fn refinement_matches_direct_build() {
        let t = table();
        let pa = Partition::build(&t, &[0]);
        let pb = Partition::build(&t, &[1]);
        let pab_direct = Partition::build(&t, &[0, 1]);
        assert_eq!(pa.refine(&pb), pab_direct);
    }

    #[test]
    fn fd_check_via_error() {
        let t = table();
        let pa = Partition::build(&t, &[0]);
        let pac = Partition::build(&t, &[0, 2]);
        // a → c holds.
        assert!(pa.implies(&pac));
        let pab = Partition::build(&t, &[0, 1]);
        // a → b fails (y maps to 2 and 3).
        assert!(!pa.implies(&pab));
    }

    #[test]
    fn empty_attrs_single_group() {
        let t = table();
        let p = Partition::build(&t, &[]);
        assert_eq!(p.groups.len(), 1);
        assert_eq!(p.groups[0].len(), 5);
    }

    #[test]
    fn g3_error_counts_minimal_removals() {
        let t = table();
        // a → c holds exactly: g3 = 0 agrees with implies().
        let pa = Partition::build(&t, &[0]);
        let pac = Partition::build(&t, &[0, 2]);
        assert_eq!(pa.g3_error(&pac), 0);
        // a → b fails on the y-group ({2,3} split into singletons):
        // removing one of the two rows fixes it.
        let pab = Partition::build(&t, &[0, 1]);
        assert_eq!(pa.g3_error(&pab), 1);
        // The empty LHS: all five rows form one group; the largest
        // b-class has two rows, so {} → b costs the other three.
        let p0 = Partition::build(&t, &[]);
        let pb = Partition::build(&t, &[1]);
        assert_eq!(p0.g3_error(&pb), 3);
    }
}
