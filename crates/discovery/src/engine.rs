//! The unified discovery engine layer — profiling's counterpart of the
//! `Detector` trait in `revival-detect`.
//!
//! Before this layer existed, every discovery entry point had its own
//! shape: `tane::discover_fds`, `ctane::discover_cfds`,
//! `cfdminer::mine_constant_cfds`, `ind_disc::discover_unary_inds` —
//! all sequential, none surfaced by the CLI or the serve protocol. A
//! [`DiscoverJob`] names the data (one table or a catalog) plus
//! [`DiscoverOptions`]; a [`DiscoveryEngine`] turns it into a
//! [`Discovered`] suite: mined CFDs with per-rule support/confidence,
//! CIND candidates (catalog jobs), the *vetted* suite (minimal cover +
//! satisfiability via `revival_constraints::analysis`), and
//! [`DiscoveryStats`] that report every search cap instead of
//! truncating silently.
//!
//! [`ParallelDiscovery`] shards each lattice level's candidate checks
//! across `std::thread::scope` workers and merges chunk outputs in
//! candidate order, so its rule lists are **byte-identical** to
//! [`SequentialDiscovery`]'s at any `jobs` — the same determinism
//! contract the detection and repair engines keep. All partition and
//! grouping work runs on the interned `GroupBy`/`Sym` kernel from
//! `revival-relation`; no `Vec<Value>` key is built anywhere in the
//! lattice.

use crate::cfdminer::{self, MinerOptions};
use crate::ind_disc::{discover_unary_inds, lift_to_cinds, IndOptions};
use crate::tane;
use revival_constraints::analysis::{self, CoverReport, Outcome};
use revival_constraints::{Cfd, Cind};
use revival_relation::{Catalog, Error, Result, Sym, Table};
use std::collections::HashSet;

/// Options for a discovery run.
#[derive(Clone, Debug)]
pub struct DiscoverOptions {
    /// Minimum matching tuples for any mined rule (plain FDs count the
    /// whole table; conditional/constant rules count pattern matches).
    pub min_support: usize,
    /// Minimum per-rule confidence: the fraction of matching tuples
    /// kept after removing a minimal set of violators (TANE's `g3`
    /// stripped-partition error). `1.0` mines only exactly-satisfied
    /// rules; below `1.0` mines usable rules from *dirty* data.
    pub min_confidence: f64,
    /// Maximum LHS size explored in the lattice (and maximum constant
    /// itemset size for CFDMiner).
    pub max_lhs: usize,
    /// Constants per conditional pattern row: `0` disables conditional
    /// probing; any positive value currently probes single-constant
    /// patterns (a documented bound, reported via
    /// [`DiscoveryStats::lattice_truncated`] only when the lattice
    /// itself is cut short).
    pub max_constants: usize,
    /// Per attribute, only the `top_values` most frequent constants are
    /// probed as conditions; values dropped by this cap are counted in
    /// [`DiscoveryStats::candidates_pruned`].
    pub top_values: usize,
    /// Also mine constant CFDs via CFDMiner (free-itemset closures).
    pub constant_rules: bool,
    /// Node budget for the vetting analyses (`minimal_cover`,
    /// `is_satisfiable`); exhausting it conservatively keeps rows and
    /// reports [`Outcome::ResourceLimit`].
    pub vet_budget: usize,
    /// The implied-row drop of `minimal_cover` is quadratic in tableau
    /// rows with an NP-hard implication check per row — feasible for
    /// curated suites, not for the hundreds of rules a raw mine can
    /// produce. Relations whose merged suite exceeds this many rows
    /// get the cheap cover only (merge by embedded FD + subsumption);
    /// the cut is reported via
    /// [`DiscoveryStats::cover_implication_skipped`], never silent.
    pub full_cover_limit: usize,
    /// Shard count for [`ParallelDiscovery`] (0 = one per available
    /// core); [`SequentialDiscovery`] ignores it.
    pub jobs: usize,
}

impl Default for DiscoverOptions {
    fn default() -> Self {
        DiscoverOptions {
            min_support: 3,
            min_confidence: 1.0,
            max_lhs: 2,
            max_constants: 1,
            top_values: 8,
            constant_rules: true,
            vet_budget: 50_000,
            full_cover_limit: 48,
            jobs: 1,
        }
    }
}

/// The data a discovery job profiles: one in-memory table, or a catalog
/// (which additionally enables IND/CIND discovery across relations).
#[derive(Clone, Copy)]
enum DataRef<'a> {
    Table(&'a Table),
    Catalog(&'a Catalog),
}

/// One discovery request: data plus options.
#[derive(Clone)]
pub struct DiscoverJob<'a> {
    data: DataRef<'a>,
    pub options: DiscoverOptions,
}

impl<'a> DiscoverJob<'a> {
    /// A job over a single table (the common CLI/session case).
    pub fn on_table(table: &'a Table, options: DiscoverOptions) -> Self {
        DiscoverJob { data: DataRef::Table(table), options }
    }

    /// A job over a catalog of relations (adds IND→CIND lifting).
    pub fn on_catalog(catalog: &'a Catalog, options: DiscoverOptions) -> Self {
        DiscoverJob { data: DataRef::Catalog(catalog), options }
    }

    /// The backing catalog, if the job was built over one.
    pub fn catalog(&self) -> Option<&'a Catalog> {
        match self.data {
            DataRef::Catalog(c) => Some(c),
            DataRef::Table(_) => None,
        }
    }

    /// Every table the job profiles, in deterministic (name) order.
    pub fn tables(&self) -> Vec<&'a Table> {
        match self.data {
            DataRef::Table(t) => vec![t],
            DataRef::Catalog(c) => {
                let mut names: Vec<&str> = c.relation_names().collect();
                names.sort_unstable();
                names.iter().filter_map(|n| c.get(n).ok()).collect()
            }
        }
    }
}

/// A mined CFD with its evidence.
#[derive(Clone, Debug, PartialEq)]
pub struct MinedCfd {
    pub cfd: Cfd,
    /// Tuples the rule's pattern matches (plain FDs: the whole table).
    pub support: usize,
    /// `1 − g3/support`: the fraction of matching tuples kept after
    /// removing a minimal set of violators. `1.0` = holds exactly.
    pub confidence: f64,
}

/// A mined CIND candidate with its evidence.
#[derive(Clone, Debug, PartialEq)]
pub struct MinedCind {
    pub cind: Cind,
    /// Source tuples the candidate's condition covers.
    pub support: usize,
}

/// Search accounting: every bound the miners apply is reported here,
/// never applied silently.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiscoveryStats {
    /// Candidate dependencies actually checked against the data.
    pub candidates_checked: usize,
    /// Candidates skipped by a bound: minimality pruning in the
    /// lattice, condition values beyond `top_values`, infrequent
    /// itemsets in CFDMiner.
    pub candidates_pruned: usize,
    /// True when the level-wise search stopped at `max_lhs` with live
    /// candidates remaining — larger LHSs were never examined.
    pub lattice_truncated: bool,
    /// Lattice levels actually explored.
    pub levels: usize,
    /// Constant rules dropped because an exact mined FD over the same
    /// embedded dependency already covers their tuples.
    pub constants_subsumed: usize,
    /// True when some relation's mined suite exceeded
    /// [`DiscoverOptions::full_cover_limit`], so vetting ran only the
    /// cheap cover (merge + subsumption) and skipped the quadratic
    /// implied-row drop for it.
    pub cover_implication_skipped: bool,
}

impl DiscoveryStats {
    /// Fold another miner's accounting into this one.
    pub fn absorb(&mut self, other: &DiscoveryStats) {
        self.candidates_checked += other.candidates_checked;
        self.candidates_pruned += other.candidates_pruned;
        self.lattice_truncated |= other.lattice_truncated;
        self.levels = self.levels.max(other.levels);
        self.constants_subsumed += other.constants_subsumed;
        self.cover_implication_skipped |= other.cover_implication_skipped;
    }
}

/// The result of a discovery run: the raw mined rules (with evidence),
/// the vetted suite, and the search accounting.
#[derive(Clone, Debug)]
pub struct Discovered {
    /// Every mined CFD in deterministic order (lattice rules per
    /// relation, then constant rules), each with support/confidence.
    pub rules: Vec<MinedCfd>,
    /// The vetted suite: per relation, the minimal cover of the mined
    /// rules (`analysis::minimal_cover` — merged by embedded FD,
    /// subsumed and implied rows dropped). This is what `semandaq
    /// discover --emit` writes and `register` installs.
    pub vetted: Vec<Cfd>,
    /// Satisfiability of the vetted suite (per-relation checks folded:
    /// any `No` wins, else any `ResourceLimit`, else `Yes`).
    pub satisfiable: Outcome,
    /// Accumulated minimal-cover accounting across relations.
    pub cover: CoverReport,
    /// CIND candidates (catalog jobs only): satisfied unary INDs plus
    /// violated inclusions lifted to conditional form.
    pub cinds: Vec<MinedCind>,
    /// Search accounting across all miners.
    pub stats: DiscoveryStats,
}

/// A dependency-discovery engine.
///
/// Implementations must agree on *what* they mine — byte-identical
/// [`Discovered::rules`] lists, asserted by parity tests — and differ
/// only in how the lattice walk is scheduled.
pub trait DiscoveryEngine {
    /// Engine name, as the CLI `--engine` flag spells it.
    fn name(&self) -> &'static str;

    /// The shard count the engine resolves for `job`.
    fn shards(&self, job: &DiscoverJob<'_>) -> usize;

    /// Mine, vet, and account for the job's suite.
    fn run(&self, job: &DiscoverJob<'_>) -> Result<Discovered> {
        run_job(job, self.shards(job))
    }

    /// [`DiscoveryEngine::run`] with a [`revival_obs::JobProfile`]
    /// alongside: identical output (profiling is side-effect-only),
    /// plus per-lattice-level attribution (candidates checked/pruned,
    /// g3 evaluations, partition-build µs, wall per level per relation)
    /// and lattice/constant-rules/vetting/cind-mining phase timings.
    fn run_profiled(&self, job: &DiscoverJob<'_>) -> Result<(Discovered, revival_obs::JobProfile)> {
        let jobs = self.shards(job);
        let mut profile = revival_obs::JobProfile::new("discovery", self.name(), jobs as u64);
        let start = std::time::Instant::now();
        let discovered = run_job_inner(job, jobs, Some(&mut profile))?;
        let us = start.elapsed().as_micros() as u64;
        profile.meta_add("rules_mined", discovered.rules.len() as u64);
        profile.meta_add("rules_vetted", discovered.vetted.len() as u64);
        profile.meta_add("candidates_checked", discovered.stats.candidates_checked as u64);
        profile.meta_add("candidates_pruned", discovered.stats.candidates_pruned as u64);
        profile.meta_add("levels", discovered.stats.levels as u64);
        profile.finish(us);
        Ok((discovered, profile))
    }
}

/// The sequential reference engine (one worker, `options.jobs`
/// ignored).
#[derive(Clone, Copy, Debug, Default)]
pub struct SequentialDiscovery;

impl DiscoveryEngine for SequentialDiscovery {
    fn name(&self) -> &'static str {
        "sequential"
    }

    fn shards(&self, _job: &DiscoverJob<'_>) -> usize {
        1
    }
}

/// The sharded engine: each lattice level's candidate checks (and the
/// next level's partition builds) run on `options.jobs` scoped threads;
/// chunk outputs merge in candidate order, so the mined rule list is
/// byte-identical to [`SequentialDiscovery`]'s at any shard count.
#[derive(Clone, Copy, Debug, Default)]
pub struct ParallelDiscovery;

impl DiscoveryEngine for ParallelDiscovery {
    fn name(&self) -> &'static str {
        "parallel"
    }

    fn shards(&self, job: &DiscoverJob<'_>) -> usize {
        match job.options.jobs {
            0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            n => n,
        }
    }
}

/// Look an engine up by CLI name.
pub fn discovery_by_name(name: &str) -> Result<Box<dyn DiscoveryEngine>> {
    match name {
        "sequential" => Ok(Box::new(SequentialDiscovery)),
        "parallel" => Ok(Box::new(ParallelDiscovery)),
        other => {
            Err(Error::Io(format!("unknown discovery engine `{other}` (sequential|parallel)")))
        }
    }
}

/// Map `f` over `items` on up to `jobs` scoped workers, preserving item
/// order in the output — the deterministic-merge primitive every
/// sharded discovery pass uses. `jobs <= 1` degenerates to a plain
/// sequential map, so the parallel engine at one shard *is* the
/// sequential engine.
pub(crate) fn sharded_map<T: Sync, R: Send>(
    items: &[T],
    jobs: usize,
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    let jobs = jobs.max(1);
    if jobs == 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let chunk = items.len().div_ceil(jobs).max(1);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| scope.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("discovery worker panicked")).collect()
    })
}

/// The shared engine body: mine every table's lattice (sharded), add
/// CFDMiner constant rules, vet per relation, and lift INDs to CINDs on
/// catalog jobs.
fn run_job(job: &DiscoverJob<'_>, jobs: usize) -> Result<Discovered> {
    run_job_inner(job, jobs, None)
}

fn run_job_inner(
    job: &DiscoverJob<'_>,
    jobs: usize,
    mut profile: Option<&mut revival_obs::JobProfile>,
) -> Result<Discovered> {
    let run_span = revival_obs::Span::traced(
        "discovery.run",
        revival_obs::global().histogram("discovery_run_us"),
    );
    let opts = &job.options;
    let tables = job.tables();
    let mut rules: Vec<MinedCfd> = Vec::new();
    let mut stats = DiscoveryStats::default();
    let (mut lattice_us, mut constant_us) = (0u64, 0u64);
    for table in &tables {
        let stage = std::time::Instant::now();
        let (mut mined, tstats) = match profile.as_deref_mut() {
            Some(p) => tane::mine_lattice_profiled(table, opts, jobs, p),
            None => tane::mine_lattice(table, opts, jobs),
        };
        lattice_us += stage.elapsed().as_micros() as u64;
        stats.absorb(&tstats);
        let stage = std::time::Instant::now();
        if opts.constant_rules {
            // Exact mined FDs over the same embedded dependency already
            // constrain the constant rule's tuples; keeping both only
            // bloats the suite. The drop is counted, not silent.
            let exact: HashSet<(Vec<usize>, usize)> = mined
                .iter()
                .filter(|m| m.confidence == 1.0 && m.cfd.is_plain_fd())
                .map(|m| (m.cfd.lhs.clone(), m.cfd.rhs))
                .collect();
            let (constants, cstats) = cfdminer::mine_constant_cfds_sharded(
                table,
                &MinerOptions { min_support: opts.min_support.max(1), max_size: opts.max_lhs },
                jobs,
            );
            stats.absorb(&cstats);
            for rule in constants {
                let lhs: Vec<usize> = rule.lhs.iter().map(|(a, _)| *a).collect();
                if exact.contains(&(lhs, rule.rhs.0)) {
                    stats.constants_subsumed += 1;
                    continue;
                }
                mined.push(MinedCfd {
                    cfd: rule.to_cfd(table.schema()),
                    support: rule.support,
                    confidence: 1.0,
                });
            }
        }
        constant_us += stage.elapsed().as_micros() as u64;
        rules.extend(mined);
    }

    // Vet per relation: minimal cover + satisfiability. Budget
    // exhaustion keeps rows conservatively (the cover stays equivalent)
    // and reports ResourceLimit rather than a wrong answer.
    let vet_start = std::time::Instant::now();
    let mut vetted: Vec<Cfd> = Vec::new();
    let mut cover = CoverReport::default();
    let mut satisfiable = Outcome::Yes;
    for table in &tables {
        let name = table.schema().name();
        let relation: Vec<Cfd> =
            rules.iter().filter(|m| m.cfd.relation == name).map(|m| m.cfd.clone()).collect();
        if relation.is_empty() {
            continue;
        }
        // The full minimal cover runs an NP-hard implication check per
        // tableau row, quadratically — fine for the handfuls of rules a
        // vetted workload keeps, hopeless for a raw mine of hundreds.
        // Past the limit, vet with the cheap cover (merge by embedded
        // FD + subsumption pruning, the same first phase minimal_cover
        // runs) and say so in the stats.
        let merged = revival_constraints::cfd::merge_by_embedded_fd(&relation);
        let rows_in: usize = merged.iter().map(|c| c.tableau.len()).sum();
        let (cov, rep) = if rows_in <= opts.full_cover_limit {
            analysis::minimal_cover(table.schema(), &relation, opts.vet_budget)
        } else {
            stats.cover_implication_skipped = true;
            let mut cheap = merged;
            let mut rep = CoverReport { rows_in, ..CoverReport::default() };
            for cfd in &mut cheap {
                let before = cfd.tableau.len();
                cfd.prune_subsumed_rows();
                rep.subsumed_dropped += before - cfd.tableau.len();
            }
            rep.rows_out = cheap.iter().map(|c| c.tableau.len()).sum();
            (cheap, rep)
        };
        match analysis::is_satisfiable(table.schema(), &cov, opts.vet_budget) {
            Outcome::Yes => {}
            Outcome::No => satisfiable = Outcome::No,
            Outcome::ResourceLimit => {
                if satisfiable == Outcome::Yes {
                    satisfiable = Outcome::ResourceLimit;
                }
            }
        }
        cover.rows_in += rep.rows_in;
        cover.rows_out += rep.rows_out;
        cover.implied_dropped += rep.implied_dropped;
        cover.subsumed_dropped += rep.subsumed_dropped;
        vetted.extend(cov);
    }

    let vetting_us = vet_start.elapsed().as_micros() as u64;

    let cind_start = std::time::Instant::now();
    let cinds = match job.catalog() {
        Some(catalog) => mine_cinds(catalog, opts)?,
        None => Vec::new(),
    };
    if let Some(p) = profile {
        p.phase_add("lattice", lattice_us);
        p.phase_add("constant_rules", constant_us);
        p.phase_add("vetting", vetting_us);
        p.phase_add("cind_mining", cind_start.elapsed().as_micros() as u64);
    }
    if revival_obs::enabled() {
        let reg = revival_obs::global();
        reg.counter("discovery_runs_total").inc();
        reg.counter("discovery_rules_mined_total").add(rules.len() as u64);
        reg.counter("discovery_rules_vetted_total").add(vetted.len() as u64);
        reg.counter("discovery_candidates_checked_total").add(stats.candidates_checked as u64);
        reg.counter("discovery_candidates_pruned_total").add(stats.candidates_pruned as u64);
        reg.counter("discovery_levels_total").add(stats.levels as u64);
    }
    drop(run_span);
    Ok(Discovered { rules, vetted, satisfiable, cover, cinds, stats })
}

/// Distinct symbol count of one column (a single column scan).
fn distinct_count(table: &Table, attr: usize) -> usize {
    let col = table.col(attr);
    let mut seen: HashSet<Sym> = HashSet::new();
    for slot in table.live_slots() {
        seen.insert(col[slot]);
    }
    seen.len()
}

/// Catalog-level profiling: satisfied unary INDs become unconditional
/// CINDs; violated type-compatible column pairs are lifted to
/// conditional candidates via [`lift_to_cinds`] — how the paper's
/// book/CD CIND arises from data.
fn mine_cinds(catalog: &Catalog, opts: &DiscoverOptions) -> Result<Vec<MinedCind>> {
    let iopts = IndOptions { min_support: opts.min_support.max(1), ..IndOptions::default() };
    let inds = discover_unary_inds(catalog, &iopts)?;
    let mut out: Vec<MinedCind> = Vec::new();
    for ind in &inds {
        let from = catalog.get(&ind.from_relation)?;
        let to = catalog.get(&ind.to_relation)?;
        let cind = Cind::new(
            from.schema(),
            &[from.schema().attr_name(ind.from_attrs[0])],
            &[],
            to.schema(),
            &[to.schema().attr_name(ind.to_attrs[0])],
            &[],
        )?;
        out.push(MinedCind { cind, support: from.len() });
    }
    // Violated cross-relation pairs: try to recover a condition under
    // which the inclusion holds.
    let mut names: Vec<&str> = catalog.relation_names().collect();
    names.sort_unstable();
    for &from_name in &names {
        let from = catalog.get(from_name)?;
        // One distinct scan per source column, shared across targets.
        let distinct: Vec<usize> =
            (0..from.schema().arity()).map(|a| distinct_count(from, a)).collect();
        for &to_name in &names {
            if from_name == to_name {
                continue;
            }
            let to = catalog.get(to_name)?;
            for (a, &n_distinct) in distinct.iter().enumerate() {
                if n_distinct < iopts.min_distinct {
                    continue;
                }
                for b in 0..to.schema().arity() {
                    if from.schema().attribute(a).ty != to.schema().attribute(b).ty {
                        continue;
                    }
                    let satisfied = inds.iter().any(|i| {
                        i.from_relation == from_name
                            && i.to_relation == to_name
                            && i.from_attrs == [a]
                            && i.to_attrs == [b]
                    });
                    if satisfied {
                        continue;
                    }
                    for c in lift_to_cinds(catalog, from_name, a, to_name, b, &iopts)? {
                        out.push(MinedCind { cind: c.cind, support: c.support });
                    }
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use revival_relation::{Schema, Type, Value};

    fn customer_table() -> Table {
        let s = Schema::builder("customer")
            .attr("cc", Type::Str)
            .attr("ac", Type::Str)
            .attr("city", Type::Str)
            .build();
        let mut t = Table::new(s);
        for (cc, ac, city) in [
            ("01", "908", "mh"),
            ("01", "908", "mh"),
            ("01", "908", "mh"),
            ("01", "212", "nyc"),
            ("01", "212", "nyc"),
            ("01", "212", "nyc"),
            ("44", "131", "edi"),
            ("44", "131", "edi"),
            ("44", "131", "edi"),
        ] {
            t.push(vec![cc.into(), ac.into(), city.into()]).unwrap();
        }
        t
    }

    #[test]
    fn profiled_discovery_is_identical_and_attributes_levels() {
        let t = customer_table();
        let job = DiscoverJob::on_table(&t, DiscoverOptions::default());
        for engine in discovery_engines() {
            let plain = engine.run(&job).unwrap();
            let (profiled, profile) = engine.run_profiled(&job).unwrap();
            let name = engine.name();
            assert_eq!(plain.rules.len(), profiled.rules.len(), "{name}");
            assert_eq!(plain.stats, profiled.stats, "{name}: profiling changed the walk");
            // One row per walked lattice level, each with its
            // candidates; the job totals also count the constant-rule
            // miner and top-value truncation, so levels sum to at most
            // the job stats — and every walked level is present.
            let levels: Vec<_> = profile.constraints.iter().filter(|c| c.kind == "level").collect();
            assert!(levels.len() >= plain.stats.levels, "{name}: {profile:?}");
            let checked: u64 = levels.iter().map(|c| c.candidates_checked).sum();
            assert!(checked > 0, "{name}: no candidates attributed");
            assert!(checked <= plain.stats.candidates_checked as u64, "{name}");
            let pruned: u64 = levels.iter().map(|c| c.candidates_pruned).sum();
            assert!(pruned <= plain.stats.candidates_pruned as u64, "{name}");
            for phase in ["lattice", "constant_rules", "vetting", "cind_mining"] {
                assert!(
                    profile.phases.iter().any(|(p, _)| *p == phase),
                    "{name}: missing phase {phase}"
                );
            }
            assert_eq!(profile.meta_get("rules_mined"), Some(plain.rules.len() as u64));
        }
    }

    fn discovery_engines() -> Vec<Box<dyn DiscoveryEngine>> {
        vec![Box::new(SequentialDiscovery), Box::new(ParallelDiscovery)]
    }

    #[test]
    fn sequential_mines_and_vets() {
        let t = customer_table();
        let job = DiscoverJob::on_table(&t, DiscoverOptions::default());
        let d = SequentialDiscovery.run(&job).unwrap();
        assert!(!d.rules.is_empty());
        assert!(!d.vetted.is_empty());
        assert_eq!(d.satisfiable, Outcome::Yes);
        // ac → city holds exactly and must be among the mined FDs.
        let found = d.rules.iter().any(|m| {
            m.cfd.lhs == vec![1] && m.cfd.rhs == 2 && m.cfd.is_plain_fd() && m.confidence == 1.0
        });
        assert!(found, "ac → city missing: {:?}", d.rules);
        // Every exact rule holds on the data; the vetted cover does too.
        for m in &d.rules {
            if m.confidence == 1.0 {
                assert!(m.cfd.satisfied_by(&t), "exact rule violated: {:?}", m.cfd);
            }
        }
        for cfd in &d.vetted {
            assert!(cfd.satisfied_by(&t), "vetted rule violated: {cfd:?}");
        }
    }

    #[test]
    fn parallel_is_byte_identical_to_sequential() {
        let t = customer_table();
        let seq = SequentialDiscovery
            .run(&DiscoverJob::on_table(&t, DiscoverOptions::default()))
            .unwrap();
        for jobs in [1, 2, 3, 4, 7] {
            let opts = DiscoverOptions { jobs, ..DiscoverOptions::default() };
            let par = ParallelDiscovery.run(&DiscoverJob::on_table(&t, opts)).unwrap();
            assert_eq!(format!("{:?}", par.rules), format!("{:?}", seq.rules), "jobs={jobs}");
            assert_eq!(format!("{:?}", par.vetted), format!("{:?}", seq.vetted), "jobs={jobs}");
            assert_eq!(par.stats, seq.stats, "jobs={jobs}");
        }
    }

    #[test]
    fn constant_rules_subsumed_by_exact_fds_are_counted() {
        let t = customer_table();
        let d = SequentialDiscovery
            .run(&DiscoverJob::on_table(&t, DiscoverOptions::default()))
            .unwrap();
        // ac → city is exact, so CFDMiner's ac='908' ⇒ city='mh' (etc.)
        // must be dropped and accounted for.
        assert!(d.stats.constants_subsumed > 0, "stats: {:?}", d.stats);
        let redundant = d.rules.iter().any(|m| {
            m.cfd.lhs == vec![1]
                && m.cfd.rhs == 2
                && m.cfd.tableau[0].rhs != revival_constraints::PatternValue::Wildcard
        });
        assert!(!redundant, "subsumed constant rule still present: {:?}", d.rules);
    }

    #[test]
    fn catalog_jobs_lift_cinds() {
        let cd = Schema::builder("cd").attr("album", Type::Str).attr("genre", Type::Str).build();
        let book =
            Schema::builder("book").attr("title", Type::Str).attr("format", Type::Str).build();
        let mut cds = Table::new(cd);
        for i in 0..8 {
            cds.push(vec![format!("ab-{i}").into(), "a-book".into()]).unwrap();
        }
        for i in 0..6 {
            cds.push(vec![format!("pop-{i}").into(), "pop".into()]).unwrap();
        }
        let mut books = Table::new(book);
        for i in 0..8 {
            books.push(vec![format!("ab-{i}").into(), "audio".into()]).unwrap();
        }
        for i in 0..4 {
            books.push(vec![Value::str(format!("novel-{i}")), "print".into()]).unwrap();
        }
        let mut catalog = Catalog::new();
        catalog.register(cds);
        catalog.register(books);
        let job = DiscoverJob::on_catalog(&catalog, DiscoverOptions::default());
        let d = SequentialDiscovery.run(&job).unwrap();
        // The genre='a-book' lifted CIND must be discovered.
        let lifted = d.cinds.iter().any(|m| {
            m.cind.from_relation == "cd"
                && m.cind.to_relation == "book"
                && m.cind.from_conds.len() == 1
                && m.cind.from_conds[0].value == "a-book".into()
        });
        assert!(lifted, "lifted CIND missing: {:?}", d.cinds);
        // And parallel catalog discovery matches byte-for-byte.
        let opts = DiscoverOptions { jobs: 4, ..DiscoverOptions::default() };
        let par = ParallelDiscovery.run(&DiscoverJob::on_catalog(&catalog, opts)).unwrap();
        assert_eq!(format!("{:?}", par.rules), format!("{:?}", d.rules));
        assert_eq!(format!("{:?}", par.cinds), format!("{:?}", d.cinds));
    }

    #[test]
    fn engine_lookup() {
        assert_eq!(discovery_by_name("sequential").unwrap().name(), "sequential");
        assert_eq!(discovery_by_name("parallel").unwrap().name(), "parallel");
        assert!(discovery_by_name("oracle").is_err());
    }
}
