//! Level-wise FD discovery (TANE, simplified).
//!
//! Walks the attribute-set lattice bottom-up keeping stripped
//! partitions; for each set `X` and `A ∈ X`, emits `X∖{A} → A` when the
//! partitions agree and no smaller LHS already implies it (minimality).
//! Candidate pruning keeps the classic rule: once `X∖{A} → A` is found,
//! supersets of `X∖{A}` are not considered as LHS for `A`.

use crate::partition::Partition;
use revival_constraints::Fd;
use revival_relation::Table;
use std::collections::{HashMap, HashSet};

/// Options for [`discover_fds`].
#[derive(Clone, Debug)]
pub struct TaneOptions {
    /// Maximum LHS size to explore.
    pub max_lhs: usize,
}

impl Default for TaneOptions {
    fn default() -> Self {
        TaneOptions { max_lhs: 4 }
    }
}

/// Discover all minimal, non-trivial FDs `X → A` with `|X| ≤ max_lhs`.
pub fn discover_fds(table: &Table, options: &TaneOptions) -> Vec<Fd> {
    let arity = table.schema().arity();
    let relation = table.schema().name().to_string();
    let mut fds: Vec<Fd> = Vec::new();
    // Known minimal LHSs per RHS attribute, for minimality pruning.
    let mut minimal_lhs: HashMap<usize, Vec<Vec<usize>>> = HashMap::new();

    // Partition cache keyed by sorted attribute set.
    let mut partitions: HashMap<Vec<usize>, Partition> = HashMap::new();
    partitions.insert(Vec::new(), Partition::build(table, &[]));
    for a in 0..arity {
        partitions.insert(vec![a], Partition::build(table, &[a]));
    }

    let mut level: Vec<Vec<usize>> = (0..arity).map(|a| vec![a]).collect();
    for _size in 1..=options.max_lhs {
        // Check FDs X∖{A} → A for every X in the *next* level by pairing
        // current-level sets with single attributes; equivalently, for
        // each X in `level` and A ∉ X test X → A.
        for x in &level {
            let px =
                partitions.entry(x.clone()).or_insert_with(|| Partition::build(table, x)).clone();
            for a in 0..arity {
                if x.contains(&a) {
                    continue;
                }
                // Minimality: skip if some subset of X already → A.
                if minimal_lhs
                    .get(&a)
                    .map(|ls| ls.iter().any(|l| l.iter().all(|b| x.contains(b))))
                    .unwrap_or(false)
                {
                    continue;
                }
                let mut xa = x.clone();
                xa.push(a);
                xa.sort();
                let pxa = partitions
                    .entry(xa.clone())
                    .or_insert_with(|| px.refine(&Partition::build(table, &[a])))
                    .clone();
                if px.implies(&pxa) {
                    fds.push(Fd::from_ids(relation.clone(), x.clone(), vec![a]));
                    minimal_lhs.entry(a).or_default().push(x.clone());
                }
            }
        }
        // Build next level: supersets of current sets (dedup by HashSet).
        let mut next: HashSet<Vec<usize>> = HashSet::new();
        for x in &level {
            for a in 0..arity {
                if x.contains(&a) {
                    continue;
                }
                let mut xa = x.clone();
                xa.push(a);
                xa.sort();
                next.insert(xa);
            }
        }
        level = next.into_iter().collect();
        level.sort();
        // Precompute partitions for the new level lazily (done above).
    }
    fds.sort_by(|a, b| {
        a.lhs.len().cmp(&b.lhs.len()).then(a.lhs.cmp(&b.lhs)).then(a.rhs.cmp(&b.rhs))
    });
    fds
}

#[cfg(test)]
mod tests {
    use super::*;
    use revival_constraints::fd;
    use revival_relation::{Schema, Type, Value};

    fn table() -> Table {
        // a is a key; b → c; d independent.
        let s = Schema::builder("r")
            .attr("a", Type::Int)
            .attr("b", Type::Str)
            .attr("c", Type::Str)
            .attr("d", Type::Int)
            .build();
        let mut t = Table::new(s);
        let rows = [
            (1, "x", "p", 10),
            (2, "x", "p", 20),
            (3, "y", "q", 10),
            (4, "y", "q", 30),
            (5, "z", "r", 20),
            (6, "z", "r", 10),
        ];
        for (a, b, c, d) in rows {
            t.push(vec![Value::Int(a), b.into(), c.into(), Value::Int(d)]).unwrap();
        }
        t
    }

    fn has_fd(fds: &[Fd], lhs: &[usize], rhs: usize) -> bool {
        fds.iter().any(|f| f.lhs == lhs && f.rhs == vec![rhs])
    }

    #[test]
    fn finds_planted_fds() {
        let t = table();
        let fds = discover_fds(&t, &TaneOptions::default());
        assert!(has_fd(&fds, &[1], 2), "b → c missing: {fds:?}");
        assert!(has_fd(&fds, &[2], 1), "c → b missing (bijective here)");
        // a is a key → a determines everything.
        for rhs in 1..4 {
            assert!(has_fd(&fds, &[0], rhs), "a → {rhs} missing");
        }
    }

    #[test]
    fn no_false_fds() {
        let t = table();
        let fds = discover_fds(&t, &TaneOptions::default());
        assert!(!has_fd(&fds, &[3], 1), "d → b does not hold");
        assert!(!has_fd(&fds, &[1], 3), "b → d does not hold");
        // Every reported FD actually holds (partition check oracle).
        for f in &fds {
            let px = crate::partition::Partition::build(&t, &f.lhs);
            let mut xa = f.lhs.clone();
            xa.push(f.rhs[0]);
            let pxa = crate::partition::Partition::build(&t, &xa);
            assert!(px.implies(&pxa), "reported FD {f:?} does not hold");
        }
    }

    #[test]
    fn minimality() {
        let t = table();
        let fds = discover_fds(&t, &TaneOptions::default());
        // b → c is minimal, so [b,d] → c must not be reported.
        assert!(!has_fd(&fds, &[1, 3], 2));
        // Armstrong-check: no FD should be implied by the others.
        for (i, f) in fds.iter().enumerate() {
            let rest: Vec<Fd> =
                fds.iter().enumerate().filter(|(j, _)| *j != i).map(|(_, x)| x.clone()).collect();
            // Minimality here = not implied by rest *with smaller LHS on
            // the same RHS*; full-implication redundancy is allowed for
            // key-derived FDs, so only check the subset form.
            let redundant = rest.iter().any(|g| {
                g.rhs == f.rhs
                    && g.lhs.iter().all(|a| f.lhs.contains(a))
                    && g.lhs.len() < f.lhs.len()
            });
            assert!(!redundant, "{f:?} has a smaller LHS variant");
        }
        let _ = fd::closure(&[0], &fds);
    }

    #[test]
    fn max_lhs_bounds_search() {
        let t = table();
        let fds = discover_fds(&t, &TaneOptions { max_lhs: 1 });
        assert!(fds.iter().all(|f| f.lhs.len() <= 1));
    }

    #[test]
    fn empty_table_finds_everything_trivially() {
        let s = Schema::builder("r").attr("a", Type::Int).attr("b", Type::Int).build();
        let t = Table::new(s);
        let fds = discover_fds(&t, &TaneOptions::default());
        // Vacuously valid FDs are fine; just must not crash and must
        // report only well-formed dependencies.
        for f in &fds {
            assert_eq!(f.rhs.len(), 1);
        }
    }
}
