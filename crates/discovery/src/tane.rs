//! Level-wise dependency discovery (TANE, extended).
//!
//! [`mine_lattice`] is the engine room of the discovery subsystem: a
//! bottom-up walk of the LHS-set lattice keeping stripped partitions,
//! extended beyond the classical algorithm in two ways:
//!
//! * **approximate rules** — each candidate `X → A` gets a confidence
//!   `1 − g3/n` from the stripped-partition error
//!   ([`Partition::g3_error`]); with `min_confidence < 1` the miner
//!   recovers dependencies from *dirty* data, not just clean samples;
//! * **conditional rules** — when the plain FD misses the confidence
//!   bar, single-constant patterns over the most frequent values are
//!   probed (CTANE's pattern search, `ctane::pattern_support_error`),
//!   yielding CFDs like `([cc='44', zip] → [street])`.
//!
//! Candidate checks at each level are independent, so the engine layer
//! shards them across scoped threads ([`crate::engine::sharded_map`])
//! and merges in candidate order — byte-identical output at any shard
//! count. Partitions group on the interned `Sym` kernel; no
//! `Vec<Value>` keys exist anywhere in the lattice.
//!
//! [`discover_fds`] keeps the classical surface: exact, minimal FDs
//! only.

use crate::engine::{sharded_map, DiscoverOptions, DiscoveryStats, MinedCfd};
use crate::partition::Partition;
use revival_constraints::pattern::{PatternRow, PatternValue};
use revival_constraints::{Cfd, Fd};
use revival_relation::{Sym, Table};
use std::collections::HashMap;

/// Options for [`discover_fds`].
#[derive(Clone, Debug)]
pub struct TaneOptions {
    /// Maximum LHS size to explore.
    pub max_lhs: usize,
}

impl Default for TaneOptions {
    fn default() -> Self {
        TaneOptions { max_lhs: 4 }
    }
}

/// Discover all minimal, non-trivial FDs `X → A` with `|X| ≤ max_lhs`
/// that hold *exactly* — the classical TANE surface, now a thin wrapper
/// over [`mine_lattice`].
pub fn discover_fds(table: &Table, options: &TaneOptions) -> Vec<Fd> {
    let opts = DiscoverOptions {
        min_support: 0,
        min_confidence: 1.0,
        max_lhs: options.max_lhs,
        max_constants: 0,
        top_values: 0,
        ..DiscoverOptions::default()
    };
    let (mined, _) = mine_lattice(table, &opts, 1);
    mined
        .into_iter()
        .filter(|m| m.cfd.is_plain_fd())
        .map(|m| Fd::from_ids(m.cfd.relation, m.cfd.lhs, vec![m.cfd.rhs]))
        .collect()
}

/// One candidate's verdict, produced by an independent (shardable)
/// check.
struct CandidateOutcome {
    rules: Vec<MinedCfd>,
    /// Stop exploring supersets of this LHS for this RHS (a plain rule
    /// was emitted — TANE's minimality pruning, extended to approximate
    /// rules).
    prune: bool,
    /// The refined partition `π_{X∪{A}}` the check computed, handed
    /// back (when `A > max(X)`, i.e. `X∪{A}` in prefix form) so the
    /// next-level build reuses it instead of refining again — the
    /// partition cache the pre-engine sequential code kept.
    refined: Option<Partition>,
}

/// Check one candidate `X → A`: plain (possibly approximate) FD first,
/// then single-constant conditional patterns when the plain form fails.
/// `keep_refined` asks for `π_{X∪{A}}` back when it can seed the next
/// level (false on the last level, where it would only burn memory).
#[allow(clippy::too_many_arguments)]
fn check_candidate(
    table: &Table,
    opts: &DiscoverOptions,
    relation: &str,
    x: &[usize],
    px: &Partition,
    singles: &[Partition],
    top: &[Vec<Sym>],
    rhs: usize,
    keep_refined: bool,
) -> CandidateOutcome {
    let n = table.len();
    let pxa = px.refine(&singles[rhs]);
    let g3 = px.g3_error(&pxa);
    let refined = (keep_refined && rhs > *x.last().expect("non-empty LHS")).then_some(pxa);
    let confidence = if n == 0 { 1.0 } else { 1.0 - g3 as f64 / n as f64 };
    if (g3 == 0 || confidence >= opts.min_confidence) && n >= opts.min_support {
        let cfd = Cfd {
            relation: relation.to_string(),
            lhs: x.to_vec(),
            rhs,
            tableau: vec![PatternRow::all_wildcards(x.len())],
        };
        return CandidateOutcome {
            rules: vec![MinedCfd { cfd, support: n, confidence }],
            prune: true,
            refined,
        };
    }
    let mut rules = Vec::new();
    if opts.max_constants > 0 {
        for (pos, &attr) in x.iter().enumerate() {
            for &vsym in &top[attr] {
                let (support, err) = crate::ctane::pattern_support_error(table, x, rhs, attr, vsym);
                if support < opts.min_support.max(1) {
                    continue;
                }
                let confidence = 1.0 - err as f64 / support as f64;
                if err == 0 || confidence >= opts.min_confidence {
                    let mut lhs_pats = vec![PatternValue::Wildcard; x.len()];
                    lhs_pats[pos] = PatternValue::Const(table.pool().value(vsym).clone());
                    let cfd = Cfd {
                        relation: relation.to_string(),
                        lhs: x.to_vec(),
                        rhs,
                        tableau: vec![PatternRow::new(lhs_pats, PatternValue::Wildcard)],
                    };
                    rules.push(MinedCfd { cfd, support, confidence });
                }
            }
        }
    }
    CandidateOutcome { rules, prune: false, refined }
}

/// Is some emitted LHS for `rhs` a subset of `x`? (Minimality pruning.)
fn pruned(minimal: &HashMap<usize, Vec<Vec<usize>>>, x: &[usize], rhs: usize) -> bool {
    minimal.get(&rhs).is_some_and(|ls| ls.iter().any(|l| l.iter().all(|b| x.contains(b))))
}

/// The most frequent constants of one attribute (ties broken by value),
/// capped at `k`; the values the cap drops are counted, not silently
/// forgotten.
fn top_value_syms(table: &Table, attr: usize, k: usize, stats: &mut DiscoveryStats) -> Vec<Sym> {
    let col = table.col(attr);
    let mut counts: HashMap<Sym, usize> = HashMap::new();
    for slot in table.live_slots() {
        *counts.entry(col[slot]).or_insert(0) += 1;
    }
    let pool = table.pool();
    let mut entries: Vec<(Sym, usize)> = counts.into_iter().collect();
    entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| pool.value(a.0).cmp(pool.value(b.0))));
    if entries.len() > k {
        stats.candidates_pruned += entries.len() - k;
        entries.truncate(k);
    }
    entries.into_iter().map(|(s, _)| s).collect()
}

/// The level-wise miner behind every discovery engine: walk LHS sets of
/// size `1..=max_lhs`, emitting plain (possibly approximate) FDs and —
/// where those fail — single-constant conditional CFDs, with TANE
/// minimality pruning across levels. `jobs > 1` shards each level's
/// candidate checks and partition builds; outputs merge in candidate
/// order, so the mined list is byte-identical at any shard count.
pub fn mine_lattice(
    table: &Table,
    opts: &DiscoverOptions,
    jobs: usize,
) -> (Vec<MinedCfd>, DiscoveryStats) {
    mine_lattice_inner(table, opts, jobs, None)
}

/// [`mine_lattice`] with per-lattice-level attribution into `profile`:
/// one constraint row per level (`<relation> lvl<N>`) carrying the
/// level's wall time, candidates checked/pruned, g3 evaluations (one
/// per candidate check), and the µs spent building its partitions.
/// The mined output is byte-identical to the unprofiled walk.
pub fn mine_lattice_profiled(
    table: &Table,
    opts: &DiscoverOptions,
    jobs: usize,
    profile: &mut revival_obs::JobProfile,
) -> (Vec<MinedCfd>, DiscoveryStats) {
    mine_lattice_inner(table, opts, jobs, Some(profile))
}

fn mine_lattice_inner(
    table: &Table,
    opts: &DiscoverOptions,
    jobs: usize,
    mut profile: Option<&mut revival_obs::JobProfile>,
) -> (Vec<MinedCfd>, DiscoveryStats) {
    let arity = table.schema().arity();
    let relation = table.schema().name().to_string();
    let mut stats = DiscoveryStats::default();
    let mut rules: Vec<MinedCfd> = Vec::new();
    if arity < 2 || opts.max_lhs == 0 {
        return (rules, stats);
    }
    let level_name = |size: usize| format!("{relation} lvl{size}");

    let attrs: Vec<usize> = (0..arity).collect();
    let singles_start = std::time::Instant::now();
    let singles: Vec<Partition> = sharded_map(&attrs, jobs, |&a| Partition::build(table, &[a]));
    if let Some(p) = profile.as_deref_mut() {
        // The single-attribute partitions seed level 1.
        p.entry(&level_name(1), "level").partition_build_us +=
            singles_start.elapsed().as_micros() as u64;
    }
    let top: Vec<Vec<Sym>> = if opts.max_constants > 0 && opts.top_values > 0 {
        (0..arity).map(|a| top_value_syms(table, a, opts.top_values, &mut stats)).collect()
    } else {
        vec![Vec::new(); arity]
    };

    // Emitted minimal LHSs per RHS attribute (minimality pruning).
    let mut minimal: HashMap<usize, Vec<Vec<usize>>> = HashMap::new();
    let mut level: Vec<(Vec<usize>, Partition)> =
        (0..arity).map(|a| (vec![a], singles[a].clone())).collect();

    for size in 1..=opts.max_lhs {
        if level.is_empty() {
            break;
        }
        stats.levels = size;
        let level_start = std::time::Instant::now();
        let pruned_before = stats.candidates_pruned;
        // Candidates surviving minimality pruning, in (set, rhs) order.
        let mut candidates: Vec<(usize, usize)> = Vec::new();
        for (i, (x, _)) in level.iter().enumerate() {
            for a in 0..arity {
                if x.contains(&a) {
                    continue;
                }
                if pruned(&minimal, x, a) {
                    stats.candidates_pruned += 1;
                } else {
                    candidates.push((i, a));
                }
            }
        }
        stats.candidates_checked += candidates.len();
        let keep_refined = size < opts.max_lhs;
        let outcomes: Vec<CandidateOutcome> = sharded_map(&candidates, jobs, |&(i, a)| {
            let (x, px) = &level[i];
            check_candidate(table, opts, &relation, x, px, &singles, &top, a, keep_refined)
        });
        // Partitions the checks already refined, keyed by prefix-form
        // set `x ++ [a]` — the next-level build takes them instead of
        // refining the same set again.
        let mut computed: HashMap<Vec<usize>, Partition> = HashMap::new();
        for (&(i, a), outcome) in candidates.iter().zip(outcomes) {
            rules.extend(outcome.rules);
            if outcome.prune {
                minimal.entry(a).or_default().push(level[i].0.clone());
            }
            if let Some(p) = outcome.refined {
                let mut xa = level[i].0.clone();
                xa.push(a);
                computed.insert(xa, p);
            }
        }

        // Next level: extend each set by a strictly larger attribute
        // (every sorted set is generated exactly once, from its own
        // prefix), keeping only sets with a live candidate RHS.
        let mut next_sets: Vec<Vec<usize>> = Vec::new();
        for (x, _) in &level {
            let last = *x.last().expect("level sets are non-empty");
            for a in last + 1..arity {
                let mut xa = x.clone();
                xa.push(a);
                let live = (0..arity).any(|r| !xa.contains(&r) && !pruned(&minimal, &xa, r));
                if live {
                    next_sets.push(xa);
                }
            }
        }
        next_sets.sort();
        if size == opts.max_lhs {
            stats.lattice_truncated = !next_sets.is_empty();
            if let Some(p) = profile.as_deref_mut() {
                let c = p.entry(&level_name(size), "level");
                c.candidates_checked += candidates.len() as u64;
                c.candidates_pruned += (stats.candidates_pruned - pruned_before) as u64;
                c.g3_evaluations += candidates.len() as u64;
                c.wall_us += level_start.elapsed().as_micros() as u64;
            }
            break;
        }
        // Partitions for the next level: reuse what the candidate
        // checks refined; fall back to refining from the prefix (always
        // present in the current level) for sets whose candidate was
        // minimality-pruned. Either path yields the identical partition
        // (a set's partition does not depend on how it was built).
        let build_start = std::time::Instant::now();
        let parent: HashMap<&[usize], usize> =
            level.iter().enumerate().map(|(i, (x, _))| (x.as_slice(), i)).collect();
        let mut prefetched: Vec<Option<Partition>> =
            next_sets.iter().map(|xa| computed.remove(xa)).collect();
        let missing: Vec<usize> =
            (0..next_sets.len()).filter(|&i| prefetched[i].is_none()).collect();
        let filled: Vec<Partition> = sharded_map(&missing, jobs, |&i| {
            let xa = &next_sets[i];
            let last = *xa.last().expect("next-level sets are non-empty");
            match parent.get(&xa[..xa.len() - 1]) {
                Some(&p) => level[p].1.refine(&singles[last]),
                None => Partition::build(table, xa),
            }
        });
        for (i, part) in missing.into_iter().zip(filled) {
            prefetched[i] = Some(part);
        }
        let parts: Vec<Partition> =
            prefetched.into_iter().map(|p| p.expect("every next set filled")).collect();
        let build_us = build_start.elapsed().as_micros() as u64;
        level = next_sets.into_iter().zip(parts).collect();
        if let Some(p) = profile.as_deref_mut() {
            // The builds run inside this level's wall but materialise
            // the next level's partitions — charged there.
            p.entry(&level_name(size + 1), "level").partition_build_us += build_us;
            let c = p.entry(&level_name(size), "level");
            c.candidates_checked += candidates.len() as u64;
            c.candidates_pruned += (stats.candidates_pruned - pruned_before) as u64;
            c.g3_evaluations += candidates.len() as u64;
            c.wall_us += level_start.elapsed().as_micros() as u64;
        }
    }
    (rules, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use revival_constraints::fd;
    use revival_relation::{Schema, Type, Value};

    fn table() -> Table {
        // a is a key; b → c; d independent.
        let s = Schema::builder("r")
            .attr("a", Type::Int)
            .attr("b", Type::Str)
            .attr("c", Type::Str)
            .attr("d", Type::Int)
            .build();
        let mut t = Table::new(s);
        let rows = [
            (1, "x", "p", 10),
            (2, "x", "p", 20),
            (3, "y", "q", 10),
            (4, "y", "q", 30),
            (5, "z", "r", 20),
            (6, "z", "r", 10),
        ];
        for (a, b, c, d) in rows {
            t.push(vec![Value::Int(a), b.into(), c.into(), Value::Int(d)]).unwrap();
        }
        t
    }

    fn has_fd(fds: &[Fd], lhs: &[usize], rhs: usize) -> bool {
        fds.iter().any(|f| f.lhs == lhs && f.rhs == vec![rhs])
    }

    #[test]
    fn finds_planted_fds() {
        let t = table();
        let fds = discover_fds(&t, &TaneOptions::default());
        assert!(has_fd(&fds, &[1], 2), "b → c missing: {fds:?}");
        assert!(has_fd(&fds, &[2], 1), "c → b missing (bijective here)");
        // a is a key → a determines everything.
        for rhs in 1..4 {
            assert!(has_fd(&fds, &[0], rhs), "a → {rhs} missing");
        }
    }

    #[test]
    fn no_false_fds() {
        let t = table();
        let fds = discover_fds(&t, &TaneOptions::default());
        assert!(!has_fd(&fds, &[3], 1), "d → b does not hold");
        assert!(!has_fd(&fds, &[1], 3), "b → d does not hold");
        // Every reported FD actually holds (partition check oracle).
        for f in &fds {
            let px = crate::partition::Partition::build(&t, &f.lhs);
            let mut xa = f.lhs.clone();
            xa.push(f.rhs[0]);
            let pxa = crate::partition::Partition::build(&t, &xa);
            assert!(px.implies(&pxa), "reported FD {f:?} does not hold");
        }
    }

    #[test]
    fn minimality() {
        let t = table();
        let fds = discover_fds(&t, &TaneOptions::default());
        // b → c is minimal, so [b,d] → c must not be reported.
        assert!(!has_fd(&fds, &[1, 3], 2));
        for (i, f) in fds.iter().enumerate() {
            let rest: Vec<Fd> =
                fds.iter().enumerate().filter(|(j, _)| *j != i).map(|(_, x)| x.clone()).collect();
            // Minimality = no other reported FD has a strictly smaller
            // LHS on the same RHS.
            let redundant = rest.iter().any(|g| {
                g.rhs == f.rhs
                    && g.lhs.iter().all(|a| f.lhs.contains(a))
                    && g.lhs.len() < f.lhs.len()
            });
            assert!(!redundant, "{f:?} has a smaller LHS variant");
        }
        let _ = fd::closure(&[0], &fds);
    }

    #[test]
    fn max_lhs_bounds_search_and_reports_truncation() {
        let t = table();
        let fds = discover_fds(&t, &TaneOptions { max_lhs: 1 });
        assert!(fds.iter().all(|f| f.lhs.len() <= 1));
        // The same bound through the stats-carrying entry point reports
        // the cut (live candidates remained past level 1).
        let opts = DiscoverOptions {
            min_support: 0,
            max_lhs: 1,
            max_constants: 0,
            ..DiscoverOptions::default()
        };
        let (_, stats) = mine_lattice(&t, &opts, 1);
        assert!(stats.lattice_truncated, "{stats:?}");
        assert_eq!(stats.levels, 1);
        // With the full lattice allowed, no truncation is reported.
        let opts = DiscoverOptions {
            min_support: 0,
            max_lhs: 4,
            max_constants: 0,
            ..DiscoverOptions::default()
        };
        let (_, stats) = mine_lattice(&t, &opts, 1);
        assert!(!stats.lattice_truncated, "{stats:?}");
    }

    #[test]
    fn empty_table_finds_everything_trivially() {
        let s = Schema::builder("r").attr("a", Type::Int).attr("b", Type::Int).build();
        let t = Table::new(s);
        let fds = discover_fds(&t, &TaneOptions::default());
        for f in &fds {
            assert_eq!(f.rhs.len(), 1);
        }
    }

    #[test]
    fn approximate_confidence_recovers_noisy_fds() {
        // b → c holds on 11 of 12 rows (one planted error).
        let s = Schema::builder("r").attr("b", Type::Str).attr("c", Type::Str).build();
        let mut t = Table::new(s);
        for i in 0..12 {
            let b = format!("k{}", i % 3);
            let c = if i == 7 { "noise".to_string() } else { format!("v{}", i % 3) };
            t.push(vec![b.into(), c.into()]).unwrap();
        }
        let strict = DiscoverOptions { max_constants: 0, ..DiscoverOptions::default() };
        let (exact, _) = mine_lattice(&t, &strict, 1);
        assert!(
            !exact.iter().any(|m| m.cfd.lhs == vec![0] && m.cfd.rhs == 1),
            "b → c does not hold exactly"
        );
        let loose =
            DiscoverOptions { min_confidence: 0.9, max_constants: 0, ..DiscoverOptions::default() };
        let (approx, _) = mine_lattice(&t, &loose, 1);
        let rule = approx
            .iter()
            .find(|m| m.cfd.lhs == vec![0] && m.cfd.rhs == 1)
            .expect("approximate b → c recovered");
        assert!(rule.confidence >= 0.9 && rule.confidence < 1.0, "{rule:?}");
        assert_eq!(rule.support, 12);
        // g3 = 1 violator out of 12 rows.
        assert!((rule.confidence - 11.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    fn sharded_lattice_is_byte_identical() {
        let t = table();
        let opts = DiscoverOptions { min_support: 0, ..DiscoverOptions::default() };
        let (seq, seq_stats) = mine_lattice(&t, &opts, 1);
        for jobs in [2, 3, 4, 8] {
            let (par, par_stats) = mine_lattice(&t, &opts, jobs);
            assert_eq!(format!("{seq:?}"), format!("{par:?}"), "jobs={jobs}");
            assert_eq!(seq_stats, par_stats, "jobs={jobs}");
        }
    }
}
