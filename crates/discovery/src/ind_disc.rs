//! Unary IND discovery across relations, with lifting to CINDs.
//!
//! Profiling (§2c) also covers cross-relation metadata: which columns
//! are contained in which. This module discovers
//!
//! * **unary INDs** `R1[a] ⊆ R2[b]` by value-set inclusion (the
//!   SPIDER-style baseline, restricted to arity 1), and
//! * **CIND candidates**: for a *violated* IND, the conditions
//!   `c = v` on the source relation under which the inclusion *does*
//!   hold — exactly how the CIND examples of Bravo et al. arise (the
//!   book/CD inclusion holds only where `genre = 'a-book'`).

use revival_constraints::cind::Cind;
use revival_constraints::Ind;
use revival_relation::{Catalog, Result, Table, Value};
use std::collections::{HashMap, HashSet};

/// Options for IND/CIND discovery.
#[derive(Clone, Debug)]
pub struct IndOptions {
    /// Minimum distinct values on the source side (tiny columns match
    /// everything by accident).
    pub min_distinct: usize,
    /// Minimum tuples a lifted CIND condition must cover.
    pub min_support: usize,
    /// Max distinct values per condition attribute to try when lifting.
    pub max_condition_values: usize,
}

impl Default for IndOptions {
    fn default() -> Self {
        IndOptions { min_distinct: 3, min_support: 5, max_condition_values: 16 }
    }
}

/// Distinct values of one column.
fn column_values(table: &Table, attr: usize) -> HashSet<Value> {
    table.rows().map(|(_, r)| r[attr].clone()).collect()
}

/// Discover all unary INDs `from[a] ⊆ to[b]` among the catalog's
/// relations (excluding trivial self-inclusions `R[a] ⊆ R[a]`).
pub fn discover_unary_inds(catalog: &Catalog, options: &IndOptions) -> Result<Vec<Ind>> {
    let mut names: Vec<&str> = catalog.relation_names().collect();
    names.sort();
    // Precompute value sets.
    let mut sets: HashMap<(String, usize), HashSet<Value>> = HashMap::new();
    for &name in &names {
        let table = catalog.get(name)?;
        for a in 0..table.schema().arity() {
            sets.insert((name.to_string(), a), column_values(table, a));
        }
    }
    let mut out = Vec::new();
    for &from_name in &names {
        let from = catalog.get(from_name)?;
        for &to_name in &names {
            let to = catalog.get(to_name)?;
            for a in 0..from.schema().arity() {
                let from_set = &sets[&(from_name.to_string(), a)];
                if from_set.len() < options.min_distinct {
                    continue;
                }
                for b in 0..to.schema().arity() {
                    if from_name == to_name && a == b {
                        continue;
                    }
                    if from.schema().attribute(a).ty != to.schema().attribute(b).ty {
                        continue;
                    }
                    let to_set = &sets[&(to_name.to_string(), b)];
                    if from_set.is_subset(to_set) {
                        out.push(Ind {
                            from_relation: from_name.to_string(),
                            from_attrs: vec![a],
                            to_relation: to_name.to_string(),
                            to_attrs: vec![b],
                        });
                    }
                }
            }
        }
    }
    Ok(out)
}

/// A lifted CIND candidate with its support.
#[derive(Clone, Debug)]
pub struct CindCandidate {
    pub cind: Cind,
    /// Source tuples the condition covers.
    pub support: usize,
}

/// For a *violated* unary inclusion `from[a] ⊆ to[b]`, find conditions
/// `cond_attr = v` on the source under which it holds, and emit them as
/// CIND candidates.
pub fn lift_to_cinds(
    catalog: &Catalog,
    from_relation: &str,
    from_attr: usize,
    to_relation: &str,
    to_attr: usize,
    options: &IndOptions,
) -> Result<Vec<CindCandidate>> {
    let from = catalog.get(from_relation)?;
    let to = catalog.get(to_relation)?;
    let target = column_values(to, to_attr);
    let mut out = Vec::new();
    for cond_attr in 0..from.schema().arity() {
        if cond_attr == from_attr {
            continue;
        }
        // Partition source rows by the condition value.
        let mut by_value: HashMap<Value, (usize, bool)> = HashMap::new();
        for (_, row) in from.rows() {
            let entry = by_value.entry(row[cond_attr].clone()).or_insert((0, true));
            entry.0 += 1;
            if !target.contains(&row[from_attr]) {
                entry.1 = false;
            }
        }
        if by_value.len() > options.max_condition_values {
            continue; // high-cardinality condition attrs overfit
        }
        let mut values: Vec<(Value, (usize, bool))> = by_value.into_iter().collect();
        values.sort_by(|x, y| x.0.cmp(&y.0));
        for (v, (support, holds)) in values {
            if holds && support >= options.min_support {
                let cind = Cind::new(
                    from.schema(),
                    &[from.schema().attr_name(from_attr)],
                    &[(from.schema().attr_name(cond_attr), v)],
                    to.schema(),
                    &[to.schema().attr_name(to_attr)],
                    &[],
                )?;
                out.push(CindCandidate { cind, support });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use revival_relation::{Schema, Type};

    fn catalog() -> Catalog {
        let cd = Schema::builder("cd").attr("album", Type::Str).attr("genre", Type::Str).build();
        let book =
            Schema::builder("book").attr("title", Type::Str).attr("format", Type::Str).build();
        let mut cds = Table::new(cd);
        // Audio-book albums appear as book titles; pop albums don't.
        for i in 0..8 {
            cds.push(vec![format!("ab-{i}").into(), "a-book".into()]).unwrap();
        }
        for i in 0..6 {
            cds.push(vec![format!("pop-{i}").into(), "pop".into()]).unwrap();
        }
        let mut books = Table::new(book);
        for i in 0..8 {
            books.push(vec![format!("ab-{i}").into(), "audio".into()]).unwrap();
        }
        for i in 0..4 {
            books.push(vec![format!("novel-{i}").into(), "print".into()]).unwrap();
        }
        let mut c = Catalog::new();
        c.register(cds);
        c.register(books);
        c
    }

    #[test]
    fn unary_ind_discovery_finds_contained_columns() {
        // Build a catalog where orders.cid ⊆ customers.id holds.
        let orders = Schema::builder("orders").attr("cid", Type::Int).build();
        let customers = Schema::builder("customers").attr("id", Type::Int).build();
        let mut o = Table::new(orders);
        for i in [1i64, 2, 3] {
            o.push(vec![Value::Int(i)]).unwrap();
        }
        let mut c = Table::new(customers);
        for i in [1i64, 2, 3, 4, 5] {
            c.push(vec![Value::Int(i)]).unwrap();
        }
        let mut cat = Catalog::new();
        cat.register(o);
        cat.register(c);
        let inds = discover_unary_inds(&cat, &IndOptions { min_distinct: 2, ..Default::default() })
            .unwrap();
        assert!(inds.iter().any(|i| i.from_relation == "orders" && i.to_relation == "customers"));
        // The reverse does NOT hold (4, 5 missing from orders).
        assert!(!inds.iter().any(|i| i.from_relation == "customers" && i.to_relation == "orders"));
    }

    #[test]
    fn violated_ind_lifts_to_genre_condition() {
        let cat = catalog();
        // album ⊈ title globally (pop albums missing) …
        let inds = discover_unary_inds(&cat, &IndOptions::default()).unwrap();
        assert!(!inds.iter().any(|i| i.from_relation == "cd" && i.to_relation == "book"));
        // … but under genre='a-book' it holds: the lifted CIND.
        let candidates = lift_to_cinds(&cat, "cd", 0, "book", 0, &IndOptions::default()).unwrap();
        let found = candidates.iter().find(|c| {
            c.cind.from_conds.len() == 1 && c.cind.from_conds[0].value == "a-book".into()
        });
        let found = found.expect("genre='a-book' condition must be discovered");
        assert_eq!(found.support, 8);
        // And the candidate actually holds on the data.
        let from = cat.get("cd").unwrap();
        let to = cat.get("book").unwrap();
        assert!(found.cind.satisfied_by(from, to));
    }

    #[test]
    fn low_support_conditions_pruned() {
        let cat = catalog();
        let candidates = lift_to_cinds(
            &cat,
            "cd",
            0,
            "book",
            0,
            &IndOptions { min_support: 100, ..Default::default() },
        )
        .unwrap();
        assert!(candidates.is_empty());
    }
}
